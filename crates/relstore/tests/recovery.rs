//! Crash-recovery equivalence and fault-injection suite for the durable
//! store: `Database::open` after snapshot + WAL replay must be row-for-row
//! identical to the in-memory database for arbitrary mutation sequences,
//! and injected disk damage (torn tails, bit flips, failed fsyncs) must
//! lose at most the uncommitted tail — never panic, never refuse to start.

use aladin_relstore::persist::{diff_databases, DurableDatabase, Mutation};
use aladin_relstore::wal;
use aladin_relstore::{ColumnDef, Constraint, Database, TableSchema, Value};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("aladin-recovery-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Copy a durable store's directory (flat: the store keeps no
/// subdirectories) so destructive fault injection can run on a scratch copy.
fn copy_store(src: &Path, tag: &str) -> PathBuf {
    let dst = temp_dir(tag);
    for entry in std::fs::read_dir(src).unwrap().flatten() {
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    dst
}

fn schema() -> TableSchema {
    TableSchema::of(vec![ColumnDef::int("a"), ColumnDef::text("b")])
}

/// A store with one table and `batches` committed insert batches, returning
/// the directory plus the expected database after every prefix length
/// (index `i` = state after `i` insert batches).
fn store_with_batches(tag: &str, batches: usize) -> (PathBuf, Vec<Database>) {
    let dir = temp_dir(tag);
    let mut store = DurableDatabase::open_named(&dir, "crash").unwrap();
    store
        .commit(vec![Mutation::CreateTable {
            name: "t".into(),
            schema: schema(),
        }])
        .unwrap();
    let mut states = vec![store.db().clone()];
    for i in 0..batches {
        store
            .commit_insert(
                "t",
                vec![vec![Value::Int(i as i64), Value::text(format!("row-{i}"))]],
            )
            .unwrap();
        states.push(store.db().clone());
    }
    (dir, states)
}

#[test]
fn torn_tail_at_every_byte_offset_loses_only_the_final_batch() {
    let (dir, states) = store_with_batches("torn", 3);
    let spans = wal::frame_spans(&dir.join("wal.log")).unwrap();
    let (last_offset, last_len) = *spans.last().unwrap();
    let full = last_offset + last_len;
    let prefix = &states[states.len() - 2];
    let complete = &states[states.len() - 1];
    for cut in last_offset..full {
        let scratch = copy_store(&dir, "torn-cut");
        let wal_path = scratch.join("wal.log");
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap();
        file.set_len(cut).unwrap();
        drop(file);
        let reopened = Database::open(&scratch)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        assert_eq!(
            diff_databases(prefix, reopened.db()),
            None,
            "cut at byte {cut} lost a committed-before-the-tail batch"
        );
        // A cut exactly at the record boundary leaves a well-formed
        // (shorter) log; any cut inside the record must be reported.
        if cut > last_offset {
            assert!(
                reopened.recovery().truncated.is_some(),
                "cut at byte {cut} was not reported as truncation"
            );
        }
        std::fs::remove_dir_all(&scratch).ok();
    }
    // The untruncated log recovers everything.
    let reopened = Database::open(&dir).unwrap();
    assert_eq!(diff_databases(complete, reopened.db()), None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flip_in_every_byte_of_the_final_record_never_panics() {
    let (dir, states) = store_with_batches("flip", 3);
    let spans = wal::frame_spans(&dir.join("wal.log")).unwrap();
    let (last_offset, last_len) = *spans.last().unwrap();
    let prefix = &states[states.len() - 2];
    let complete = &states[states.len() - 1];
    for at in last_offset..last_offset + last_len {
        let scratch = copy_store(&dir, "flip-at");
        let wal_path = scratch.join("wal.log");
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes[at as usize] ^= 0xFF;
        std::fs::write(&wal_path, &bytes).unwrap();
        let reopened = Database::open(&scratch)
            .unwrap_or_else(|e| panic!("recovery failed with flip at {at}: {e}"));
        // The damaged record is dropped (checksum/framing catches the flip)
        // or — only if the flip somehow still framed and checksummed — the
        // full state survives. Committed-before-the-tail batches never go.
        let ok = diff_databases(prefix, reopened.db()).is_none()
            || diff_databases(complete, reopened.db()).is_none();
        assert!(
            ok,
            "flip at byte {at} lost a committed-before-the-tail batch"
        );
        std::fs::remove_dir_all(&scratch).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_fsync_is_not_acknowledged_and_not_recovered() {
    let dir = temp_dir("fsync");
    let mut store = DurableDatabase::open_named(&dir, "crash").unwrap();
    store
        .commit(vec![Mutation::CreateTable {
            name: "t".into(),
            schema: schema(),
        }])
        .unwrap();
    store
        .commit_insert("t", vec![vec![Value::Int(1), Value::text("kept")]])
        .unwrap();
    let before = store.db().clone();

    store.inject_fsync_failures(1);
    let err = store.commit_insert("t", vec![vec![Value::Int(2), Value::text("lost")]]);
    assert!(err.is_err(), "a failed fsync must fail the commit");
    // Not applied in memory...
    assert_eq!(diff_databases(&before, store.db()), None);
    drop(store);
    // ...and not on disk either: reopening sees exactly the acknowledged
    // state.
    let reopened = Database::open(&dir).unwrap();
    assert_eq!(diff_databases(&before, reopened.db()), None);
    assert!(!reopened.recovery().found_damage());
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Property: reopen ≡ in-memory for arbitrary mutation sequences
// ---------------------------------------------------------------------------

/// One abstract operation of the generated workload; invalid combinations
/// (inserting into a missing table, re-creating an existing one) are skipped
/// during interpretation, so every committed batch is valid by construction.
#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Drop(u8),
    Insert(u8, Vec<i64>),
    Constrain(u8),
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::Create),
        (0u8..4).prop_map(Op::Drop),
        (0u8..4, prop::collection::vec(any::<i64>(), 1..6)).prop_map(|(t, r)| Op::Insert(t, r)),
        (0u8..4).prop_map(Op::Constrain),
        Just(Op::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reopen_is_row_for_row_identical_to_the_in_memory_database(
        ops in prop::collection::vec(op_strategy(), 1..40),
        checkpoint_every in 0usize..5,
    ) {
        let dir = temp_dir("prop");
        let mut store = DurableDatabase::open_named(&dir, "prop").unwrap();
        store.set_checkpoint_every(checkpoint_every);
        for op in ops {
            match op {
                Op::Create(t) => {
                    let name = format!("t{t}");
                    if store.db().table(&name).is_err() {
                        store.commit(vec![Mutation::CreateTable { name, schema: schema() }])
                            .unwrap();
                    }
                }
                Op::Drop(t) => {
                    let name = format!("t{t}");
                    if store.db().table(&name).is_ok() {
                        store.commit(vec![Mutation::DropTable { name }]).unwrap();
                    }
                }
                Op::Insert(t, values) => {
                    let name = format!("t{t}");
                    if store.db().table(&name).is_ok() {
                        let rows = values
                            .into_iter()
                            .map(|v| vec![Value::Int(v), Value::text(format!("v{v}"))])
                            .collect();
                        store.commit_insert(&name, rows).unwrap();
                    }
                }
                Op::Constrain(t) => {
                    let name = format!("t{t}");
                    if store.db().table(&name).is_ok() {
                        store.commit(vec![Mutation::AddConstraint(Constraint::NotNull {
                            table: name,
                            column: "a".into(),
                        })]).unwrap();
                    }
                }
                Op::Checkpoint => {
                    store.checkpoint().unwrap();
                }
            }
        }
        let expected = store.db().clone();
        drop(store);
        let reopened = Database::open(&dir).unwrap();
        prop_assert_eq!(diff_databases(&expected, reopened.db()), None);
        prop_assert!(!reopened.recovery().found_damage());
        std::fs::remove_dir_all(&dir).ok();
    }
}
