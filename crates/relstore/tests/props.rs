//! Property-based tests for the relational substrate.

use aladin_relstore::exec::{execute, execute_naive};
use aladin_relstore::expr::{like_match, Expr};
use aladin_relstore::optimize::optimize;
use aladin_relstore::plan::SortKey;
use aladin_relstore::{ColumnDef, Database, LogicalPlan, Row, TableSchema, Value};
use proptest::prelude::*;

/// A two-table database for plan-equivalence testing: `entry` (id, acc, grp)
/// and `anno` (entry_id, tag), with deliberately small value alphabets so
/// filters and join keys collide often.
fn plan_db(entries: &[(i64, String, i64)], annos: &[(i64, String)]) -> Database {
    let mut db = Database::new("prop");
    db.create_table(
        "entry",
        TableSchema::of(vec![
            ColumnDef::int("id"),
            ColumnDef::text("acc"),
            ColumnDef::int("grp"),
        ]),
    )
    .unwrap();
    db.create_table(
        "anno",
        TableSchema::of(vec![ColumnDef::int("entry_id"), ColumnDef::text("tag")]),
    )
    .unwrap();
    for (id, acc, grp) in entries {
        db.insert(
            "entry",
            vec![Value::Int(*id), Value::text(acc.clone()), Value::Int(*grp)],
        )
        .unwrap();
    }
    for (entry_id, tag) in annos {
        db.insert(
            "anno",
            vec![Value::Int(*entry_id), Value::text(tag.clone())],
        )
        .unwrap();
    }
    db
}

/// One randomly shaped plan over [`plan_db`]'s schema.
#[allow(clippy::too_many_arguments)]
fn arb_shape_plan(
    shape: u8,
    acc: &str,
    grp: i64,
    pattern: &str,
    limit: usize,
    offset: usize,
    descending: bool,
) -> LogicalPlan {
    let acc_eq = Expr::col("acc").eq(Expr::lit(Value::text(acc)));
    let grp_eq = Expr::col("grp").eq(Expr::lit(grp));
    let like = Expr::col("acc").like(pattern);
    let sort_key = vec![SortKey {
        column: "acc".into(),
        ascending: !descending,
    }];
    match shape {
        0 => LogicalPlan::scan("entry").filter(acc_eq),
        1 => LogicalPlan::scan("entry").filter(grp_eq).filter(like),
        2 => LogicalPlan::scan("entry")
            .filter(acc_eq)
            .project_columns(&["acc", "grp"])
            .limit(limit),
        3 => LogicalPlan::scan("entry")
            .filter(grp_eq.and(like))
            .sort(sort_key)
            .offset(offset)
            .limit(limit),
        4 => LogicalPlan::scan("entry")
            .join(LogicalPlan::scan("anno"), "id", "entry_id", "entry", "anno")
            .filter(acc_eq.and(Expr::col("tag").like(pattern)))
            .sort(sort_key)
            .limit(limit),
        _ => LogicalPlan::scan("entry")
            .filter(like)
            .aggregate(
                vec!["grp".to_string()],
                vec![aladin_relstore::plan::Aggregate::count_star("n")],
            )
            .sort(vec![SortKey {
                column: "grp".into(),
                ascending: true,
            }]),
    }
}

fn sorted_rows(rows: &[Row]) -> Vec<Row> {
    let mut rows = rows.to_vec();
    rows.sort();
    rows
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::float),
        "[a-zA-Z0-9_:;. -]{0,24}".prop_map(Value::text),
    ]
}

proptest! {
    /// The value ordering is a total order: antisymmetric and transitive on
    /// sampled triples, and equal values hash equally.
    #[test]
    fn value_ordering_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        if a == b {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// `Value::infer` round-trips through rendering: inferring the rendered
    /// form of an inferred value is idempotent.
    #[test]
    fn infer_is_idempotent(raw in "[ -~]{0,24}") {
        let first = Value::infer(&raw);
        let second = Value::infer(&first.render());
        prop_assert_eq!(first, second);
    }

    /// LIKE with a '%'-wrapped literal pattern behaves like substring search
    /// for patterns without wildcard characters.
    #[test]
    fn like_percent_wrapping_is_contains(text in "[a-z0-9 ]{0,20}", needle in "[a-z0-9]{1,5}") {
        let pattern = format!("%{needle}%");
        prop_assert_eq!(like_match(&text, &pattern), text.contains(&needle));
    }

    /// Inserting N well-typed rows yields a table with N rows, uniqueness of a
    /// strictly increasing key column always holds, and a SQL count agrees.
    #[test]
    fn insert_scan_count_agree(n in 1usize..40) {
        let mut db = Database::new("prop");
        db.create_table(
            "t",
            TableSchema::of(vec![ColumnDef::int("id"), ColumnDef::text("label")]),
        )
        .unwrap();
        for i in 0..n {
            db.insert("t", vec![Value::Int(i as i64), Value::text(format!("row{i}"))]).unwrap();
        }
        let table = db.table("t").unwrap();
        prop_assert_eq!(table.row_count(), n);
        prop_assert!(table.column_is_unique("id").unwrap());
        let plan = aladin_relstore::sql::parse("SELECT COUNT(*) AS n FROM t").unwrap();
        let result = aladin_relstore::exec::execute(&db, &plan).unwrap();
        prop_assert_eq!(result.cell(0, "n").unwrap(), &Value::Int(n as i64));
    }

    /// The streaming executor agrees with the naive materializing evaluator
    /// row for row, in order, on randomly shaped plans and data.
    #[test]
    fn streaming_executor_matches_naive(
        entries in prop::collection::vec((0i64..20, "[a-c]{1,2}", 0i64..4), 0..30),
        annos in prop::collection::vec((0i64..20, "[a-c]{1,2}"), 0..20),
        shape in 0u8..6,
        acc in "[a-c]{1,2}",
        grp in 0i64..4,
        pattern in "[a-c%_]{0,3}",
        limit in 0usize..15,
        offset in 0usize..5,
        descending in any::<bool>(),
    ) {
        let db = plan_db(&entries, &annos);
        let plan = arb_shape_plan(shape, &acc, grp, &pattern, limit, offset, descending);
        let naive = execute_naive(&db, &plan).unwrap();
        let streamed = execute(&db, &plan).unwrap();
        prop_assert_eq!(naive.schema().column_names(), streamed.schema().column_names());
        prop_assert_eq!(naive.rows(), streamed.rows());
    }

    /// The optimizer is observationally pure:
    /// `execute(optimize(plan)) == execute(plan)` row for row after canonical
    /// ordering, on randomly shaped plans and data.
    #[test]
    fn optimizer_is_observationally_pure(
        entries in prop::collection::vec((0i64..20, "[a-c]{1,2}", 0i64..4), 0..30),
        annos in prop::collection::vec((0i64..20, "[a-c]{1,2}"), 0..20),
        shape in 0u8..6,
        acc in "[a-c]{1,2}",
        grp in 0i64..4,
        pattern in "[a-c%_]{0,3}",
        limit in 0usize..15,
        offset in 0usize..5,
        descending in any::<bool>(),
    ) {
        let db = plan_db(&entries, &annos);
        let plan = arb_shape_plan(shape, &acc, grp, &pattern, limit, offset, descending);
        let optimized = optimize(&db, &plan);
        let reference = execute_naive(&db, &plan).unwrap();
        let result = execute(&db, &optimized).unwrap();
        prop_assert_eq!(
            reference.schema().column_names(),
            result.schema().column_names(),
            "schema changed by:\n{}",
            optimized.explain()
        );
        prop_assert_eq!(
            sorted_rows(reference.rows()),
            sorted_rows(result.rows()),
            "rows changed by:\n{}",
            optimized.explain()
        );
    }

    /// Filters partition a table: matching + non-matching row counts add up.
    #[test]
    fn filter_partitions_rows(threshold in 0i64..50, n in 1usize..50) {
        let mut db = Database::new("prop");
        db.create_table("t", TableSchema::of(vec![ColumnDef::int("v")])).unwrap();
        for i in 0..n {
            db.insert("t", vec![Value::Int(i as i64)]).unwrap();
        }
        let below = aladin_relstore::exec::execute(
            &db,
            &aladin_relstore::sql::parse(&format!("SELECT * FROM t WHERE v < {threshold}")).unwrap(),
        )
        .unwrap();
        let at_or_above = aladin_relstore::exec::execute(
            &db,
            &aladin_relstore::sql::parse(&format!("SELECT * FROM t WHERE v >= {threshold}")).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(below.row_count() + at_or_above.row_count(), n);
    }
}
