//! Property-based tests for the relational substrate.

use aladin_relstore::expr::like_match;
use aladin_relstore::{ColumnDef, Database, TableSchema, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::float),
        "[a-zA-Z0-9_:;. -]{0,24}".prop_map(Value::text),
    ]
}

proptest! {
    /// The value ordering is a total order: antisymmetric and transitive on
    /// sampled triples, and equal values hash equally.
    #[test]
    fn value_ordering_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        if a == b {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// `Value::infer` round-trips through rendering: inferring the rendered
    /// form of an inferred value is idempotent.
    #[test]
    fn infer_is_idempotent(raw in "[ -~]{0,24}") {
        let first = Value::infer(&raw);
        let second = Value::infer(&first.render());
        prop_assert_eq!(first, second);
    }

    /// LIKE with a '%'-wrapped literal pattern behaves like substring search
    /// for patterns without wildcard characters.
    #[test]
    fn like_percent_wrapping_is_contains(text in "[a-z0-9 ]{0,20}", needle in "[a-z0-9]{1,5}") {
        let pattern = format!("%{needle}%");
        prop_assert_eq!(like_match(&text, &pattern), text.contains(&needle));
    }

    /// Inserting N well-typed rows yields a table with N rows, uniqueness of a
    /// strictly increasing key column always holds, and a SQL count agrees.
    #[test]
    fn insert_scan_count_agree(n in 1usize..40) {
        let mut db = Database::new("prop");
        db.create_table(
            "t",
            TableSchema::of(vec![ColumnDef::int("id"), ColumnDef::text("label")]),
        )
        .unwrap();
        for i in 0..n {
            db.insert("t", vec![Value::Int(i as i64), Value::text(format!("row{i}"))]).unwrap();
        }
        let table = db.table("t").unwrap();
        prop_assert_eq!(table.row_count(), n);
        prop_assert!(table.column_is_unique("id").unwrap());
        let plan = aladin_relstore::sql::parse("SELECT COUNT(*) AS n FROM t").unwrap();
        let result = aladin_relstore::exec::execute(&db, &plan).unwrap();
        prop_assert_eq!(result.cell(0, "n").unwrap(), &Value::Int(n as i64));
    }

    /// Filters partition a table: matching + non-matching row counts add up.
    #[test]
    fn filter_partitions_rows(threshold in 0i64..50, n in 1usize..50) {
        let mut db = Database::new("prop");
        db.create_table("t", TableSchema::of(vec![ColumnDef::int("v")])).unwrap();
        for i in 0..n {
            db.insert("t", vec![Value::Int(i as i64)]).unwrap();
        }
        let below = aladin_relstore::exec::execute(
            &db,
            &aladin_relstore::sql::parse(&format!("SELECT * FROM t WHERE v < {threshold}")).unwrap(),
        )
        .unwrap();
        let at_or_above = aladin_relstore::exec::execute(
            &db,
            &aladin_relstore::sql::parse(&format!("SELECT * FROM t WHERE v >= {threshold}")).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(below.row_count() + at_or_above.row_count(), n);
    }
}
