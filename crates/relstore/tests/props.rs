//! Property-based tests for the relational substrate.

use aladin_relstore::analyze::analyze;
use aladin_relstore::exec::{execute, execute_naive};
use aladin_relstore::expr::{like_match, BinaryOp, Expr};
use aladin_relstore::optimize::optimize;
use aladin_relstore::plan::SortKey;
use aladin_relstore::{ColumnDef, Database, LogicalPlan, Row, TableSchema, Value};
use proptest::prelude::*;

/// A two-table database for plan-equivalence testing: `entry` (id, acc, grp)
/// and `anno` (entry_id, tag), with deliberately small value alphabets so
/// filters and join keys collide often.
fn plan_db(entries: &[(i64, String, i64)], annos: &[(i64, String)]) -> Database {
    let mut db = Database::new("prop");
    db.create_table(
        "entry",
        TableSchema::of(vec![
            ColumnDef::int("id"),
            ColumnDef::text("acc"),
            ColumnDef::int("grp"),
        ]),
    )
    .unwrap();
    db.create_table(
        "anno",
        TableSchema::of(vec![ColumnDef::int("entry_id"), ColumnDef::text("tag")]),
    )
    .unwrap();
    for (id, acc, grp) in entries {
        db.insert(
            "entry",
            vec![Value::Int(*id), Value::text(acc.clone()), Value::Int(*grp)],
        )
        .unwrap();
    }
    for (entry_id, tag) in annos {
        db.insert(
            "anno",
            vec![Value::Int(*entry_id), Value::text(tag.clone())],
        )
        .unwrap();
    }
    db
}

/// One randomly shaped plan over [`plan_db`]'s schema.
#[allow(clippy::too_many_arguments)]
fn arb_shape_plan(
    shape: u8,
    acc: &str,
    grp: i64,
    pattern: &str,
    limit: usize,
    offset: usize,
    descending: bool,
) -> LogicalPlan {
    let acc_eq = Expr::col("acc").eq(Expr::lit(Value::text(acc)));
    let grp_eq = Expr::col("grp").eq(Expr::lit(grp));
    let like = Expr::col("acc").like(pattern);
    let sort_key = vec![SortKey {
        column: "acc".into(),
        ascending: !descending,
    }];
    match shape {
        0 => LogicalPlan::scan("entry").filter(acc_eq),
        1 => LogicalPlan::scan("entry").filter(grp_eq).filter(like),
        2 => LogicalPlan::scan("entry")
            .filter(acc_eq)
            .project_columns(&["acc", "grp"])
            .limit(limit),
        3 => LogicalPlan::scan("entry")
            .filter(grp_eq.and(like))
            .sort(sort_key)
            .offset(offset)
            .limit(limit),
        4 => LogicalPlan::scan("entry")
            .join(LogicalPlan::scan("anno"), "id", "entry_id", "entry", "anno")
            .filter(acc_eq.and(Expr::col("tag").like(pattern)))
            .sort(sort_key)
            .limit(limit),
        _ => LogicalPlan::scan("entry")
            .filter(like)
            .aggregate(
                vec!["grp".to_string()],
                vec![aladin_relstore::plan::Aggregate::count_star("n")],
            )
            .sort(vec![SortKey {
                column: "grp".into(),
                ascending: true,
            }]),
    }
}

fn sorted_rows(rows: &[Row]) -> Vec<Row> {
    let mut rows = rows.to_vec();
    rows.sort();
    rows
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::float),
        "[a-zA-Z0-9_:;. -]{0,24}".prop_map(Value::text),
    ]
}

/// A column of [`plan_db`]'s `entry` table — or one that does not exist, so
/// the analyzer-gated properties also sample ill-formed plans.
fn arb_column() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("id"), Just("acc"), Just("grp"), Just("missing")]
}

fn arb_cmp_op() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Eq),
        Just(BinaryOp::Ne),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Ge),
    ]
}

/// One comparison conjunct, deliberately allowed to compare a column against
/// a literal of any type class (the mismatched-predicate corpus).
fn arb_comparison() -> impl Strategy<Value = Expr> {
    (arb_column(), arb_cmp_op(), arb_value())
        .prop_map(|(col, op, v)| Expr::binary(op, Expr::col(col), Expr::lit(v)))
}

/// A random predicate shape over random comparisons: single comparisons,
/// conjunctions/disjunctions, negations, NULL tests, and (occasionally)
/// ill-typed shapes such as a bare column used as the predicate.
fn arb_predicate() -> impl Strategy<Value = Expr> {
    prop_oneof![
        arb_comparison(),
        arb_comparison(),
        (arb_comparison(), arb_comparison()).prop_map(|(a, b)| a.and(b)),
        (arb_comparison(), arb_comparison()).prop_map(|(a, b)| a.or(b)),
        arb_comparison().prop_map(|e| Expr::Not(Box::new(e))),
        arb_column().prop_map(|c| Expr::IsNull(Box::new(Expr::col(c)))),
        arb_column().prop_map(Expr::col),
    ]
}

proptest! {
    /// The value ordering is a total order: antisymmetric and transitive on
    /// sampled triples, and equal values hash equally.
    #[test]
    fn value_ordering_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        if a == b {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// `Value::infer` round-trips through rendering: inferring the rendered
    /// form of an inferred value is idempotent.
    #[test]
    fn infer_is_idempotent(raw in "[ -~]{0,24}") {
        let first = Value::infer(&raw);
        let second = Value::infer(&first.render());
        prop_assert_eq!(first, second);
    }

    /// LIKE with a '%'-wrapped literal pattern behaves like substring search
    /// for patterns without wildcard characters.
    #[test]
    fn like_percent_wrapping_is_contains(text in "[a-z0-9 ]{0,20}", needle in "[a-z0-9]{1,5}") {
        let pattern = format!("%{needle}%");
        prop_assert_eq!(like_match(&text, &pattern), text.contains(&needle));
    }

    /// Inserting N well-typed rows yields a table with N rows, uniqueness of a
    /// strictly increasing key column always holds, and a SQL count agrees.
    #[test]
    fn insert_scan_count_agree(n in 1usize..40) {
        let mut db = Database::new("prop");
        db.create_table(
            "t",
            TableSchema::of(vec![ColumnDef::int("id"), ColumnDef::text("label")]),
        )
        .unwrap();
        for i in 0..n {
            db.insert("t", vec![Value::Int(i as i64), Value::text(format!("row{i}"))]).unwrap();
        }
        let table = db.table("t").unwrap();
        prop_assert_eq!(table.row_count(), n);
        prop_assert!(table.column_is_unique("id").unwrap());
        let plan = aladin_relstore::sql::parse("SELECT COUNT(*) AS n FROM t").unwrap();
        let result = aladin_relstore::exec::execute(&db, &plan).unwrap();
        prop_assert_eq!(result.cell(0, "n").unwrap(), &Value::Int(n as i64));
    }

    /// The streaming executor agrees with the naive materializing evaluator
    /// row for row, in order, on randomly shaped plans and data.
    #[test]
    fn streaming_executor_matches_naive(
        entries in prop::collection::vec((0i64..20, "[a-c]{1,2}", 0i64..4), 0..30),
        annos in prop::collection::vec((0i64..20, "[a-c]{1,2}"), 0..20),
        shape in 0u8..6,
        acc in "[a-c]{1,2}",
        grp in 0i64..4,
        pattern in "[a-c%_]{0,3}",
        limit in 0usize..15,
        offset in 0usize..5,
        descending in any::<bool>(),
    ) {
        let db = plan_db(&entries, &annos);
        let plan = arb_shape_plan(shape, &acc, grp, &pattern, limit, offset, descending);
        let naive = execute_naive(&db, &plan).unwrap();
        let streamed = execute(&db, &plan).unwrap();
        prop_assert_eq!(naive.schema().column_names(), streamed.schema().column_names());
        prop_assert_eq!(naive.rows(), streamed.rows());
    }

    /// The optimizer is observationally pure:
    /// `execute(optimize(plan)) == execute(plan)` row for row after canonical
    /// ordering, on randomly shaped plans and data.
    #[test]
    fn optimizer_is_observationally_pure(
        entries in prop::collection::vec((0i64..20, "[a-c]{1,2}", 0i64..4), 0..30),
        annos in prop::collection::vec((0i64..20, "[a-c]{1,2}"), 0..20),
        shape in 0u8..6,
        acc in "[a-c]{1,2}",
        grp in 0i64..4,
        pattern in "[a-c%_]{0,3}",
        limit in 0usize..15,
        offset in 0usize..5,
        descending in any::<bool>(),
    ) {
        let db = plan_db(&entries, &annos);
        let plan = arb_shape_plan(shape, &acc, grp, &pattern, limit, offset, descending);
        let optimized = optimize(&db, &plan);
        let reference = execute_naive(&db, &plan).unwrap();
        let result = execute(&db, &optimized).unwrap();
        prop_assert_eq!(
            reference.schema().column_names(),
            result.schema().column_names(),
            "schema changed by:\n{}",
            optimized.explain()
        );
        prop_assert_eq!(
            sorted_rows(reference.rows()),
            sorted_rows(result.rows()),
            "rows changed by:\n{}",
            optimized.explain()
        );
    }

    /// The two executor paths agree on predicates that compare a column with
    /// a literal of a mismatched type class (Int column vs Text literal,
    /// Float vs Bool, NULL, ...): the same rows when both succeed, and a
    /// failure on both paths when either fails.
    #[test]
    fn mismatched_type_predicates_agree_across_executors(
        entries in prop::collection::vec((0i64..20, "[a-c]{1,2}", 0i64..4), 0..30),
        predicate in arb_predicate(),
    ) {
        let db = plan_db(&entries, &[]);
        let plan = LogicalPlan::scan("entry").filter(predicate);
        match (execute_naive(&db, &plan), execute(&db, &plan)) {
            (Ok(naive), Ok(streamed)) => {
                prop_assert_eq!(naive.schema().column_names(), streamed.schema().column_names());
                prop_assert_eq!(naive.rows(), streamed.rows());
            }
            (naive, streamed) => prop_assert!(
                naive.is_err() && streamed.is_err(),
                "executors disagreed: naive={naive:?} streamed={streamed:?}"
            ),
        }
    }

    /// "Well-typed plans don't go wrong": when the static analyzer reports
    /// no error diagnostics for a randomly generated filter plan, both
    /// executor paths run without type errors and agree; the optimizer
    /// (including proven-empty pruning) is observationally equivalent; and
    /// when the analyzer proves the plan empty (W201), the *unoptimized*
    /// naive path already returns zero rows.
    #[test]
    fn analyzer_clean_plans_dont_go_wrong(
        entries in prop::collection::vec((0i64..20, "[a-c]{1,2}", 0i64..4), 0..30),
        predicate in arb_predicate(),
        second in prop_oneof![Just(None), arb_comparison().prop_map(Some)],
    ) {
        let db = plan_db(&entries, &[]);
        let mut plan = LogicalPlan::scan("entry").filter(predicate);
        if let Some(p) = second {
            plan = plan.filter(p);
        }
        let analysis = analyze(&db, &plan);
        if !analysis.has_errors() {
            let naive = execute_naive(&db, &plan);
            prop_assert!(naive.is_ok(), "analyzer-clean plan failed naively: {naive:?}");
            let naive = naive.unwrap();
            let streamed = execute(&db, &plan);
            prop_assert!(streamed.is_ok(), "analyzer-clean plan failed streaming: {streamed:?}");
            prop_assert_eq!(naive.rows(), streamed.unwrap().rows());

            let optimized = optimize(&db, &plan);
            let pruned = execute(&db, &optimized);
            prop_assert!(pruned.is_ok(), "optimized plan failed: {pruned:?}");
            prop_assert_eq!(
                sorted_rows(naive.rows()),
                sorted_rows(pruned.unwrap().rows()),
                "optimizer changed results:\n{}",
                optimized.explain()
            );

            if analysis.proven_empty() {
                prop_assert_eq!(
                    naive.row_count(),
                    0,
                    "analyzer proved empty but the unoptimized plan returned rows"
                );
            }
        }
    }

    /// Filters partition a table: matching + non-matching row counts add up.
    #[test]
    fn filter_partitions_rows(threshold in 0i64..50, n in 1usize..50) {
        let mut db = Database::new("prop");
        db.create_table("t", TableSchema::of(vec![ColumnDef::int("v")])).unwrap();
        for i in 0..n {
            db.insert("t", vec![Value::Int(i as i64)]).unwrap();
        }
        let below = aladin_relstore::exec::execute(
            &db,
            &aladin_relstore::sql::parse(&format!("SELECT * FROM t WHERE v < {threshold}")).unwrap(),
        )
        .unwrap();
        let at_or_above = aladin_relstore::exec::execute(
            &db,
            &aladin_relstore::sql::parse(&format!("SELECT * FROM t WHERE v >= {threshold}")).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(below.row_count() + at_or_above.row_count(), n);
    }
}
