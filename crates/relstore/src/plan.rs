//! Logical query plans, plus the `EXPLAIN`-style pretty-printer that makes
//! optimized and naive plans inspectable in tests and docs.

use crate::expr::Expr;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
    /// Left outer equi-join: unmatched left rows padded with NULLs.
    LeftOuter,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// COUNT(*) or COUNT(column) (non-null count).
    Count,
    /// Sum of numeric values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Mean of numeric values.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

/// An aggregate expression: a function over a column (or `*` for COUNT).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aggregate {
    /// The aggregate function.
    pub func: AggFunc,
    /// The input column; `None` means `*` (only valid for COUNT).
    pub column: Option<String>,
    /// Output column name.
    pub alias: String,
}

impl Aggregate {
    /// `COUNT(*) AS alias`.
    pub fn count_star(alias: impl Into<String>) -> Aggregate {
        Aggregate {
            func: AggFunc::Count,
            column: None,
            alias: alias.into(),
        }
    }

    /// An aggregate over a named column.
    pub fn of(func: AggFunc, column: impl Into<String>, alias: impl Into<String>) -> Aggregate {
        Aggregate {
            func,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }
}

/// A sort key: column name plus direction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortKey {
    /// Column to sort by.
    pub column: String,
    /// Ascending (`true`) or descending.
    pub ascending: bool,
}

/// 64-bit FNV-1a hash of a byte string. Used to fingerprint plans (and, in
/// `aladin-core`, object-query specs) as compact cache keys; not
/// cryptographic.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A logical query plan over a [`crate::Database`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogicalPlan {
    /// Scan a named base table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Probe a hash index for the rows of `table` whose `column` equals
    /// `value`. Produced by the optimizer from equality predicates over base
    /// scans; the executor re-checks the equality on the candidate rows, so
    /// the node is exactly equivalent to `Scan` + `Filter(column = value)`.
    IndexScan {
        /// Table name.
        table: String,
        /// Indexed column.
        column: String,
        /// The probe value.
        value: Value,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate expression.
        predicate: Expr,
    },
    /// Project expressions (with output names).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Equi-join two inputs on a single column pair.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join column in the left input.
        left_col: String,
        /// Join column in the right input.
        right_col: String,
        /// Join type.
        join_type: JoinType,
        /// Qualifier used to disambiguate clashing column names from the left.
        left_qualifier: String,
        /// Qualifier used to disambiguate clashing column names from the right.
        right_qualifier: String,
    },
    /// Group-by aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping columns (may be empty for a global aggregate).
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggregates: Vec<Aggregate>,
    },
    /// Sort by one or more keys.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys in priority order.
        keys: Vec<SortKey>,
    },
    /// Keep only the first `limit` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum number of rows.
        limit: usize,
    },
    /// Skip the first `offset` rows (SQL `OFFSET`).
    Offset {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Number of rows to skip.
        offset: usize,
    },
    /// A relation proven empty at optimization time (a contradictory filter
    /// predicate, or an operator whose input was already proven empty).
    /// Carries the schema of the subtree it replaced so downstream operators
    /// and result tables keep their column layout.
    Empty {
        /// Schema of the pruned subtree.
        schema: crate::schema::TableSchema,
    },
}

impl LogicalPlan {
    /// Scan helper.
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
        }
    }

    /// Wrap this plan in a filter.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wrap this plan in a projection of plain columns.
    pub fn project_columns(self, columns: &[&str]) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs: columns
                .iter()
                .map(|c| (Expr::col(*c), (*c).to_string()))
                .collect(),
        }
    }

    /// Wrap this plan in a projection of arbitrary expressions.
    pub fn project(self, exprs: Vec<(Expr, String)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    /// Inner equi-join with another plan.
    pub fn join(
        self,
        right: LogicalPlan,
        left_col: impl Into<String>,
        right_col: impl Into<String>,
        left_qualifier: impl Into<String>,
        right_qualifier: impl Into<String>,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_col: left_col.into(),
            right_col: right_col.into(),
            join_type: JoinType::Inner,
            left_qualifier: left_qualifier.into(),
            right_qualifier: right_qualifier.into(),
        }
    }

    /// Group-by aggregation.
    pub fn aggregate(self, group_by: Vec<String>, aggregates: Vec<Aggregate>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by,
            aggregates,
        }
    }

    /// Sort by keys.
    pub fn sort(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// Limit the number of rows.
    pub fn limit(self, limit: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            limit,
        }
    }

    /// Skip the first `offset` rows. Combined with [`LogicalPlan::limit`]
    /// this is the pagination shape: `plan.offset(page * size).limit(size)`.
    pub fn offset(self, offset: usize) -> LogicalPlan {
        LogicalPlan::Offset {
            input: Box::new(self),
            offset,
        }
    }

    /// A proven-empty relation with the given schema.
    pub fn empty(schema: crate::schema::TableSchema) -> LogicalPlan {
        LogicalPlan::Empty { schema }
    }

    /// Render the plan as an indented `EXPLAIN`-style tree, one operator per
    /// line, children indented by two spaces. The output is stable and is
    /// asserted verbatim by plan-snapshot tests, e.g.:
    ///
    /// ```text
    /// Limit 1
    ///   IndexScan protkb_entry.ac = 'P10001'
    /// ```
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            LogicalPlan::Scan { table } => {
                let _ = writeln!(out, "Scan {table}");
            }
            LogicalPlan::IndexScan {
                table,
                column,
                value,
            } => {
                let _ = writeln!(
                    out,
                    "IndexScan {table}.{column} = {}",
                    Expr::Literal(value.clone())
                );
            }
            LogicalPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "Filter {predicate}");
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Project { input, exprs } => {
                let cols: Vec<String> = exprs
                    .iter()
                    .map(|(e, name)| match e {
                        Expr::Column(c) if c == name => name.clone(),
                        other => format!("{other} AS {name}"),
                    })
                    .collect();
                let _ = writeln!(out, "Project {}", cols.join(", "));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                left_col,
                right_col,
                join_type,
                ..
            } => {
                let kind = match join_type {
                    JoinType::Inner => "Inner",
                    JoinType::LeftOuter => "LeftOuter",
                };
                let _ = writeln!(
                    out,
                    "HashJoin {kind} {left_col} = {right_col} (build right)"
                );
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|a| match &a.column {
                        Some(c) => format!("{}({c}) AS {}", a.func, a.alias),
                        None => format!("{}(*) AS {}", a.func, a.alias),
                    })
                    .collect();
                if group_by.is_empty() {
                    let _ = writeln!(out, "Aggregate {}", aggs.join(", "));
                } else {
                    let _ = writeln!(
                        out,
                        "Aggregate group by {} compute {}",
                        group_by.join(", "),
                        aggs.join(", ")
                    );
                }
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{} {}", k.column, if k.ascending { "ASC" } else { "DESC" }))
                    .collect();
                let _ = writeln!(out, "Sort {}", ks.join(", "));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Limit { input, limit } => {
                let _ = writeln!(out, "Limit {limit}");
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Offset { input, offset } => {
                let _ = writeln!(out, "Offset {offset}");
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Empty { .. } => {
                let _ = writeln!(out, "Empty");
            }
        }
    }

    /// A stable 64-bit fingerprint of the plan's structure, the cache key of
    /// normalized plans. Every node and expression derives a structural
    /// `Debug`, so hashing the canonical `Debug` rendering makes two plans
    /// fingerprint equal exactly when they are structurally equal — SQL texts
    /// that parse to the same plan (case or whitespace differences) share a
    /// fingerprint, while any differing literal, column or operator changes
    /// it.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_bytes(format!("{self:?}").as_bytes())
    }

    /// Names of base tables referenced by the plan (depth-first, with
    /// duplicates removed, preserving first occurrence).
    pub fn referenced_tables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        self.collect_tables(&mut out);
        let mut seen = std::collections::HashSet::new();
        out.retain(|t| seen.insert(t.to_ascii_lowercase()));
        out
    }

    fn collect_tables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            LogicalPlan::Scan { table } | LogicalPlan::IndexScan { table, .. } => out.push(table),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Offset { input, .. } => input.collect_tables(out),
            LogicalPlan::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
            LogicalPlan::Empty { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_plans() {
        let plan = LogicalPlan::scan("bioentry")
            .filter(Expr::col("accession").like("P%"))
            .project_columns(&["accession"])
            .limit(10);
        match &plan {
            LogicalPlan::Limit { limit, input } => {
                assert_eq!(*limit, 10);
                assert!(matches!(**input, LogicalPlan::Project { .. }));
            }
            _ => panic!("unexpected plan shape"),
        }
    }

    #[test]
    fn offset_composes_and_reports_tables() {
        let plan = LogicalPlan::scan("bioentry").offset(20).limit(10);
        match &plan {
            LogicalPlan::Limit { input, .. } => match &**input {
                LogicalPlan::Offset { offset, input } => {
                    assert_eq!(*offset, 20);
                    assert!(matches!(**input, LogicalPlan::Scan { .. }));
                }
                _ => panic!("expected offset under limit"),
            },
            _ => panic!("unexpected plan shape"),
        }
        assert_eq!(plan.referenced_tables(), vec!["bioentry"]);
    }

    #[test]
    fn referenced_tables_deduplicates() {
        let plan = LogicalPlan::scan("bioentry").join(
            LogicalPlan::scan("dbref").join(
                LogicalPlan::scan("bioentry"),
                "bioentry_id",
                "bioentry_id",
                "dbref",
                "bioentry",
            ),
            "bioentry_id",
            "bioentry_id",
            "bioentry",
            "dbref",
        );
        assert_eq!(plan.referenced_tables(), vec!["bioentry", "dbref"]);
    }

    #[test]
    fn explain_renders_an_indented_tree() {
        let plan = LogicalPlan::scan("bioentry")
            .filter(Expr::col("accession").like("P%"))
            .sort(vec![SortKey {
                column: "accession".into(),
                ascending: true,
            }])
            .limit(10);
        assert_eq!(
            plan.explain(),
            "Limit 10\n  Sort accession ASC\n    Filter (accession LIKE 'P%')\n      Scan bioentry\n"
        );
        let idx = LogicalPlan::IndexScan {
            table: "bioentry".into(),
            column: "accession".into(),
            value: Value::text("P11111"),
        };
        assert_eq!(idx.explain(), "IndexScan bioentry.accession = 'P11111'\n");
        assert_eq!(idx.referenced_tables(), vec!["bioentry"]);
    }

    #[test]
    fn fingerprint_is_structural() {
        let a = LogicalPlan::scan("bioentry")
            .filter(Expr::col("accession").like("P%"))
            .limit(10);
        let b = LogicalPlan::scan("bioentry")
            .filter(Expr::col("accession").like("P%"))
            .limit(10);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Any structural difference — literal, limit, operator — changes it.
        assert_ne!(
            a.fingerprint(),
            LogicalPlan::scan("bioentry")
                .filter(Expr::col("accession").like("Q%"))
                .limit(10)
                .fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            LogicalPlan::scan("bioentry")
                .filter(Expr::col("accession").like("P%"))
                .limit(11)
                .fingerprint()
        );
        // Stable across calls.
        assert_eq!(a.fingerprint(), a.fingerprint());
        // And the raw byte hash distinguishes kind-prefixed keys.
        assert_ne!(fingerprint_bytes(b"sql:x"), fingerprint_bytes(b"plan:x"));
    }

    #[test]
    fn aggregate_helpers() {
        let a = Aggregate::count_star("n");
        assert_eq!(a.func, AggFunc::Count);
        assert!(a.column.is_none());
        let b = Aggregate::of(AggFunc::Max, "score", "max_score");
        assert_eq!(b.column.as_deref(), Some("score"));
        assert_eq!(AggFunc::Avg.to_string(), "AVG");
    }
}
