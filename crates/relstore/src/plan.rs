//! Logical query plans.

use crate::expr::Expr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
    /// Left outer equi-join: unmatched left rows padded with NULLs.
    LeftOuter,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// COUNT(*) or COUNT(column) (non-null count).
    Count,
    /// Sum of numeric values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Mean of numeric values.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

/// An aggregate expression: a function over a column (or `*` for COUNT).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aggregate {
    /// The aggregate function.
    pub func: AggFunc,
    /// The input column; `None` means `*` (only valid for COUNT).
    pub column: Option<String>,
    /// Output column name.
    pub alias: String,
}

impl Aggregate {
    /// `COUNT(*) AS alias`.
    pub fn count_star(alias: impl Into<String>) -> Aggregate {
        Aggregate {
            func: AggFunc::Count,
            column: None,
            alias: alias.into(),
        }
    }

    /// An aggregate over a named column.
    pub fn of(func: AggFunc, column: impl Into<String>, alias: impl Into<String>) -> Aggregate {
        Aggregate {
            func,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }
}

/// A sort key: column name plus direction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortKey {
    /// Column to sort by.
    pub column: String,
    /// Ascending (`true`) or descending.
    pub ascending: bool,
}

/// A logical query plan over a [`crate::Database`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogicalPlan {
    /// Scan a named base table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate expression.
        predicate: Expr,
    },
    /// Project expressions (with output names).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Equi-join two inputs on a single column pair.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join column in the left input.
        left_col: String,
        /// Join column in the right input.
        right_col: String,
        /// Join type.
        join_type: JoinType,
        /// Qualifier used to disambiguate clashing column names from the left.
        left_qualifier: String,
        /// Qualifier used to disambiguate clashing column names from the right.
        right_qualifier: String,
    },
    /// Group-by aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping columns (may be empty for a global aggregate).
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggregates: Vec<Aggregate>,
    },
    /// Sort by one or more keys.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys in priority order.
        keys: Vec<SortKey>,
    },
    /// Keep only the first `limit` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum number of rows.
        limit: usize,
    },
    /// Skip the first `offset` rows (SQL `OFFSET`).
    Offset {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Number of rows to skip.
        offset: usize,
    },
}

impl LogicalPlan {
    /// Scan helper.
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
        }
    }

    /// Wrap this plan in a filter.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wrap this plan in a projection of plain columns.
    pub fn project_columns(self, columns: &[&str]) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs: columns
                .iter()
                .map(|c| (Expr::col(*c), (*c).to_string()))
                .collect(),
        }
    }

    /// Wrap this plan in a projection of arbitrary expressions.
    pub fn project(self, exprs: Vec<(Expr, String)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    /// Inner equi-join with another plan.
    pub fn join(
        self,
        right: LogicalPlan,
        left_col: impl Into<String>,
        right_col: impl Into<String>,
        left_qualifier: impl Into<String>,
        right_qualifier: impl Into<String>,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_col: left_col.into(),
            right_col: right_col.into(),
            join_type: JoinType::Inner,
            left_qualifier: left_qualifier.into(),
            right_qualifier: right_qualifier.into(),
        }
    }

    /// Group-by aggregation.
    pub fn aggregate(self, group_by: Vec<String>, aggregates: Vec<Aggregate>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by,
            aggregates,
        }
    }

    /// Sort by keys.
    pub fn sort(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// Limit the number of rows.
    pub fn limit(self, limit: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            limit,
        }
    }

    /// Skip the first `offset` rows. Combined with [`LogicalPlan::limit`]
    /// this is the pagination shape: `plan.offset(page * size).limit(size)`.
    pub fn offset(self, offset: usize) -> LogicalPlan {
        LogicalPlan::Offset {
            input: Box::new(self),
            offset,
        }
    }

    /// Names of base tables referenced by the plan (depth-first, with
    /// duplicates removed, preserving first occurrence).
    pub fn referenced_tables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        self.collect_tables(&mut out);
        let mut seen = std::collections::HashSet::new();
        out.retain(|t| seen.insert(t.to_ascii_lowercase()));
        out
    }

    fn collect_tables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            LogicalPlan::Scan { table } => out.push(table),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Offset { input, .. } => input.collect_tables(out),
            LogicalPlan::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_plans() {
        let plan = LogicalPlan::scan("bioentry")
            .filter(Expr::col("accession").like("P%"))
            .project_columns(&["accession"])
            .limit(10);
        match &plan {
            LogicalPlan::Limit { limit, input } => {
                assert_eq!(*limit, 10);
                assert!(matches!(**input, LogicalPlan::Project { .. }));
            }
            _ => panic!("unexpected plan shape"),
        }
    }

    #[test]
    fn offset_composes_and_reports_tables() {
        let plan = LogicalPlan::scan("bioentry").offset(20).limit(10);
        match &plan {
            LogicalPlan::Limit { input, .. } => match &**input {
                LogicalPlan::Offset { offset, input } => {
                    assert_eq!(*offset, 20);
                    assert!(matches!(**input, LogicalPlan::Scan { .. }));
                }
                _ => panic!("expected offset under limit"),
            },
            _ => panic!("unexpected plan shape"),
        }
        assert_eq!(plan.referenced_tables(), vec!["bioentry"]);
    }

    #[test]
    fn referenced_tables_deduplicates() {
        let plan = LogicalPlan::scan("bioentry").join(
            LogicalPlan::scan("dbref").join(
                LogicalPlan::scan("bioentry"),
                "bioentry_id",
                "bioentry_id",
                "dbref",
                "bioentry",
            ),
            "bioentry_id",
            "bioentry_id",
            "bioentry",
            "dbref",
        );
        assert_eq!(plan.referenced_tables(), vec!["bioentry", "dbref"]);
    }

    #[test]
    fn aggregate_helpers() {
        let a = Aggregate::count_star("n");
        assert_eq!(a.func, AggFunc::Count);
        assert!(a.column.is_none());
        let b = Aggregate::of(AggFunc::Max, "score", "max_score");
        assert_eq!(b.column.as_deref(), Some("score"));
        assert_eq!(AggFunc::Avg.to_string(), "AVG");
    }
}
