//! Streaming (pull-based) plan execution.
//!
//! [`open`] compiles a [`LogicalPlan`] into a tree of [`RowStream`] operators
//! that pull rows on demand. Rows flow as [`Cow`]s: `Scan`, `IndexScan`,
//! `Filter`, `Limit` and `Offset` pass table rows through **borrowed**, so a
//! `WHERE acc = ? LIMIT 1` never clones a table; only row-producing operators
//! (`Project`, `Join`, `Aggregate`) allocate, and only for the rows they
//! actually emit. `Limit` stops pulling as soon as it is satisfied, which
//! short-circuits all upstream work, and `Limit` directly above `Sort` (with
//! an optional `Offset` in between) fuses into a bounded top-k sort that
//! keeps at most `2·(offset+limit)` rows buffered instead of the whole input.
//!
//! Pipeline breakers (`Sort`, `Aggregate`, the build side of `Join`) consume
//! their input when the stream is opened; everything else is lazy. Compared
//! to the naive evaluator ([`crate::exec::execute_naive`]) the only
//! observable difference is that *runtime* errors (a division by zero in a
//! predicate, say) surface only for rows that are actually pulled.

use crate::catalog::Database;
use crate::error::RelResult;
use crate::expr::Expr;
use crate::plan::{Aggregate, JoinType, LogicalPlan, SortKey};
use crate::schema::{ColumnDef, TableSchema};
use crate::table::{Row, Table};
use crate::value::Value;
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::{HashMap, VecDeque};

/// A pull-based stream of rows with a known schema. Obtained from [`open`];
/// drained with [`RowStream::next_row`].
pub struct RowStream<'a> {
    schema: TableSchema,
    op: Op<'a>,
}

enum Op<'a> {
    /// Base-table scan: borrowed rows, zero copies.
    Scan(std::slice::Iter<'a, Row>),
    /// Hash-index probe: candidate positions, re-checked against the probe
    /// value so the node is exactly `Scan` + `Filter(column = value)`.
    IndexScan {
        table: &'a Table,
        positions: std::vec::IntoIter<usize>,
        col: usize,
        value: Value,
    },
    Filter {
        input: Box<RowStream<'a>>,
        predicate: Expr,
    },
    Project {
        input: Box<RowStream<'a>>,
        exprs: Vec<Expr>,
    },
    Join(Box<HashJoin<'a>>),
    /// Sorted (or top-k-pruned) rows, materialized when the stream opened.
    Sorted(std::vec::IntoIter<Cow<'a, Row>>),
    /// Owned rows materialized when the stream opened (aggregation output).
    Materialized(std::vec::IntoIter<Row>),
    Limit {
        input: Box<RowStream<'a>>,
        remaining: usize,
    },
    Offset {
        input: Box<RowStream<'a>>,
        remaining: usize,
    },
}

struct HashJoin<'a> {
    left: RowStream<'a>,
    right_rows: Vec<Cow<'a, Row>>,
    /// Join key → positions in `right_rows`. NULL keys are not entered.
    build: HashMap<Value, Vec<usize>>,
    right_arity: usize,
    l_idx: usize,
    join_type: JoinType,
    pending: VecDeque<Row>,
}

impl<'a> RowStream<'a> {
    /// Schema of the rows this stream yields.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Pull the next row, or `None` when the stream is exhausted.
    pub fn next_row(&mut self) -> RelResult<Option<Cow<'a, Row>>> {
        match &mut self.op {
            Op::Scan(iter) => Ok(iter.next().map(Cow::Borrowed)),
            Op::IndexScan {
                table,
                positions,
                col,
                value,
            } => {
                for pos in positions.by_ref() {
                    let row = &table.rows()[pos];
                    if row[*col].cmp(value) == Ordering::Equal {
                        return Ok(Some(Cow::Borrowed(row)));
                    }
                }
                Ok(None)
            }
            Op::Filter { input, predicate } => {
                while let Some(row) = input.next_row()? {
                    if predicate.eval_predicate(input.schema(), &row)? {
                        return Ok(Some(row));
                    }
                }
                Ok(None)
            }
            Op::Project { input, exprs } => match input.next_row()? {
                None => Ok(None),
                Some(row) => {
                    let mut out = Vec::with_capacity(exprs.len());
                    for e in exprs.iter() {
                        out.push(e.eval(input.schema(), &row)?);
                    }
                    Ok(Some(Cow::Owned(out)))
                }
            },
            Op::Join(join) => join.next_row(),
            Op::Sorted(iter) => Ok(iter.next()),
            Op::Materialized(iter) => Ok(iter.next().map(Cow::Owned)),
            Op::Limit { input, remaining } => {
                if *remaining == 0 {
                    return Ok(None);
                }
                match input.next_row()? {
                    Some(row) => {
                        *remaining -= 1;
                        Ok(Some(row))
                    }
                    None => {
                        *remaining = 0;
                        Ok(None)
                    }
                }
            }
            Op::Offset { input, remaining } => {
                while *remaining > 0 {
                    if input.next_row()?.is_none() {
                        *remaining = 0;
                        return Ok(None);
                    }
                    *remaining -= 1;
                }
                input.next_row()
            }
        }
    }
}

impl<'a> HashJoin<'a> {
    fn next_row(&mut self) -> RelResult<Option<Cow<'a, Row>>> {
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Ok(Some(Cow::Owned(row)));
            }
            let lrow = match self.left.next_row()? {
                Some(r) => r,
                None => return Ok(None),
            };
            let key = &lrow[self.l_idx];
            let matches = if key.is_null() {
                None
            } else {
                self.build.get(key)
            };
            match matches {
                Some(positions) => {
                    for &pos in positions {
                        let rrow: &Row = &self.right_rows[pos];
                        let mut combined = Vec::with_capacity(lrow.len() + rrow.len());
                        combined.extend(lrow.iter().cloned());
                        combined.extend(rrow.iter().cloned());
                        self.pending.push_back(combined);
                    }
                }
                None => {
                    if self.join_type == JoinType::LeftOuter {
                        let mut combined = Vec::with_capacity(lrow.len() + self.right_arity);
                        combined.extend(lrow.iter().cloned());
                        combined.extend(std::iter::repeat_n(Value::Null, self.right_arity));
                        self.pending.push_back(combined);
                    }
                }
            }
        }
    }
}

/// Compile a plan into a pull-based operator tree over `db`. Structural
/// errors (unknown tables, columns, duplicate projection names) surface here;
/// per-row evaluation errors surface from [`RowStream::next_row`].
pub fn open<'a>(db: &'a Database, plan: &LogicalPlan) -> RelResult<RowStream<'a>> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = db.table(table)?;
            Ok(RowStream {
                schema: t.schema().clone(),
                op: Op::Scan(t.rows().iter()),
            })
        }
        LogicalPlan::IndexScan {
            table,
            column,
            value,
        } => {
            let t = db.table(table)?;
            let col = t.column_index(column)?;
            let index = db.hash_index(table, column)?;
            let positions: Vec<usize> = index.lookup_value(value).to_vec();
            Ok(RowStream {
                schema: t.schema().clone(),
                op: Op::IndexScan {
                    table: t,
                    positions: positions.into_iter(),
                    col,
                    value: value.clone(),
                },
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let input = open(db, input)?;
            Ok(RowStream {
                schema: input.schema().clone(),
                op: Op::Filter {
                    input: Box::new(input),
                    predicate: predicate.clone(),
                },
            })
        }
        LogicalPlan::Project { input, exprs } => {
            let input = open(db, input)?;
            let mut cols = Vec::with_capacity(exprs.len());
            for (e, name) in exprs {
                cols.push(ColumnDef::new(name.clone(), e.result_type(input.schema())));
            }
            let schema = TableSchema::new(cols)?;
            Ok(RowStream {
                schema,
                op: Op::Project {
                    input: Box::new(input),
                    exprs: exprs.iter().map(|(e, _)| e.clone()).collect(),
                },
            })
        }
        LogicalPlan::Join {
            left,
            right,
            left_col,
            right_col,
            join_type,
            left_qualifier,
            right_qualifier,
        } => {
            let left_stream = open(db, left)?;
            let mut right_stream = open(db, right)?;
            let l_idx = left_stream.schema().require(left_col)?;
            let r_idx = right_stream.schema().require(right_col)?;
            let schema =
                left_stream
                    .schema()
                    .join(right_stream.schema(), left_qualifier, right_qualifier);
            let right_arity = right_stream.schema().arity();
            // Build side: materialize the right input and hash its keys.
            let mut right_rows: Vec<Cow<'a, Row>> = Vec::new();
            let mut build: HashMap<Value, Vec<usize>> = HashMap::new();
            while let Some(row) = right_stream.next_row()? {
                let key = row[r_idx].clone();
                if !key.is_null() {
                    build.entry(key).or_default().push(right_rows.len());
                }
                right_rows.push(row);
            }
            Ok(RowStream {
                schema,
                op: Op::Join(Box::new(HashJoin {
                    left: left_stream,
                    right_rows,
                    build,
                    right_arity,
                    l_idx,
                    join_type: *join_type,
                    pending: VecDeque::new(),
                })),
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => open_aggregate(db, input, group_by, aggregates),
        LogicalPlan::Sort { input, keys } => open_sort(db, input, keys, None, 0),
        LogicalPlan::Limit { input, limit } => match &**input {
            // Sort directly below (with an optional Offset in between) fuses
            // into a bounded top-k sort.
            LogicalPlan::Sort {
                input: sort_input,
                keys,
            } => open_sort(db, sort_input, keys, Some(*limit), 0),
            LogicalPlan::Offset {
                input: offset_input,
                offset,
            } => {
                if let LogicalPlan::Sort {
                    input: sort_input,
                    keys,
                } = &**offset_input
                {
                    open_sort(
                        db,
                        sort_input,
                        keys,
                        Some(limit.saturating_add(*offset)),
                        *offset,
                    )
                } else {
                    open_limit(db, input, *limit)
                }
            }
            _ => open_limit(db, input, *limit),
        },
        LogicalPlan::Offset { input, offset } => {
            let input = open(db, input)?;
            Ok(RowStream {
                schema: input.schema().clone(),
                op: Op::Offset {
                    input: Box::new(input),
                    remaining: *offset,
                },
            })
        }
        // A proven-empty relation: a scan over no rows, so downstream
        // operators (join builds included) never do any work.
        LogicalPlan::Empty { schema } => {
            const NO_ROWS: &[Row] = &[];
            Ok(RowStream {
                schema: schema.clone(),
                op: Op::Scan(NO_ROWS.iter()),
            })
        }
    }
}

fn open_limit<'a>(db: &'a Database, input: &LogicalPlan, limit: usize) -> RelResult<RowStream<'a>> {
    let input = open(db, input)?;
    Ok(RowStream {
        schema: input.schema().clone(),
        op: Op::Limit {
            input: Box::new(input),
            remaining: limit,
        },
    })
}

/// Open a sort, optionally bounded to the best `keep` rows (top-k) of which
/// the first `skip` are then dropped — the fused `Sort` + `Offset` + `Limit`
/// pagination shape. The bounded path buffers at most `2·keep` rows.
fn open_sort<'a>(
    db: &'a Database,
    input_plan: &LogicalPlan,
    keys: &[SortKey],
    keep: Option<usize>,
    skip: usize,
) -> RelResult<RowStream<'a>> {
    let mut input = open(db, input_plan)?;
    let schema = input.schema().clone();
    let key_idx: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| schema.require(&k.column).map(|i| (i, k.ascending)))
        .collect::<RelResult<_>>()?;
    let compare = |a: &Cow<'a, Row>, b: &Cow<'a, Row>| {
        for (i, asc) in &key_idx {
            let ord = a[*i].cmp(&b[*i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    };

    let mut rows: Vec<Cow<'a, Row>> = Vec::new();
    match keep {
        None => {
            while let Some(row) = input.next_row()? {
                rows.push(row);
            }
            rows.sort_by(compare);
        }
        Some(k) => {
            // Amortized top-k: let the buffer grow to 2·k, then stable-sort
            // and cut back to the best k. Stable sorting keeps ties in input
            // order, so the result equals a full sort's first k rows.
            let cap = k.max(1).saturating_mul(2);
            while let Some(row) = input.next_row()? {
                rows.push(row);
                if rows.len() >= cap {
                    rows.sort_by(compare);
                    rows.truncate(k);
                }
            }
            rows.sort_by(compare);
            rows.truncate(k);
        }
    }
    if skip > 0 {
        rows.drain(..skip.min(rows.len()));
    }
    Ok(RowStream {
        schema,
        op: Op::Sorted(rows.into_iter()),
    })
}

/// Incremental accumulator for one aggregate of one group.
enum Acc {
    Count(usize),
    Best(Option<Value>),
    Numeric { sum: f64, n: usize },
}

fn open_aggregate<'a>(
    db: &'a Database,
    input_plan: &LogicalPlan,
    group_by: &[String],
    aggregates: &[Aggregate],
) -> RelResult<RowStream<'a>> {
    use crate::error::RelError;
    use crate::plan::AggFunc;

    let mut input = open(db, input_plan)?;
    let in_schema = input.schema().clone();
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|c| in_schema.require(c))
        .collect::<RelResult<_>>()?;
    let agg_idx: Vec<Option<usize>> = aggregates
        .iter()
        .map(|a| match &a.column {
            Some(c) => in_schema.require(c).map(Some),
            None => Ok(None),
        })
        .collect::<RelResult<_>>()?;
    let schema = crate::exec::aggregate_schema(&in_schema, group_by, aggregates)?;

    let new_accs = || -> Vec<Acc> {
        aggregates
            .iter()
            .map(|a| match a.func {
                AggFunc::Count => Acc::Count(0),
                AggFunc::Min | AggFunc::Max => Acc::Best(None),
                AggFunc::Sum | AggFunc::Avg => Acc::Numeric { sum: 0.0, n: 0 },
            })
            .collect()
    };

    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    while let Some(row) = input.next_row()? {
        let key: Vec<Value> = group_idx.iter().map(|i| row[*i].clone()).collect();
        let accs = groups.entry(key).or_insert_with(new_accs);
        for ((a, idx), acc) in aggregates.iter().zip(&agg_idx).zip(accs.iter_mut()) {
            match acc {
                Acc::Count(n) => match idx {
                    None => *n += 1,
                    Some(i) => {
                        if !row[*i].is_null() {
                            *n += 1;
                        }
                    }
                },
                Acc::Best(best) => {
                    let i = idx.ok_or_else(|| RelError::Exec("MIN/MAX require a column".into()))?;
                    let v = &row[i];
                    if v.is_null() {
                        continue;
                    }
                    let keep_new = match best {
                        None => true,
                        Some(b) => {
                            if a.func == AggFunc::Min {
                                v < b
                            } else {
                                v > b
                            }
                        }
                    };
                    if keep_new {
                        *best = Some(v.clone());
                    }
                }
                Acc::Numeric { sum, n } => {
                    let i = idx.ok_or_else(|| RelError::Exec("SUM/AVG require a column".into()))?;
                    let v = &row[i];
                    if v.is_null() {
                        continue;
                    }
                    let f = v.as_float().ok_or_else(|| {
                        RelError::Exec(format!("non-numeric value '{v}' in SUM/AVG"))
                    })?;
                    *sum += f;
                    *n += 1;
                }
            }
        }
    }
    if groups.is_empty() && group_by.is_empty() {
        // A global aggregate over an empty input still yields one row.
        groups.insert(Vec::new(), new_accs());
    }

    // Deterministic output order.
    let mut keys: Vec<Vec<Value>> = groups.keys().cloned().collect();
    keys.sort();
    let mut rows: Vec<Row> = Vec::with_capacity(keys.len());
    for key in keys {
        let accs = &groups[&key];
        let mut out_row: Row = key.clone();
        for ((a, idx), acc) in aggregates.iter().zip(&agg_idx).zip(accs.iter()) {
            let value = match acc {
                Acc::Count(n) => Value::Int(*n as i64),
                Acc::Best(best) => {
                    if idx.is_none() {
                        return Err(RelError::Exec("MIN/MAX require a column".into()));
                    }
                    best.clone().unwrap_or(Value::Null)
                }
                Acc::Numeric { sum, n } => {
                    if idx.is_none() {
                        return Err(RelError::Exec("SUM/AVG require a column".into()));
                    }
                    if *n == 0 {
                        Value::Null
                    } else if a.func == AggFunc::Sum {
                        Value::float(*sum)
                    } else {
                        Value::float(*sum / *n as f64)
                    }
                }
            };
            out_row.push(value);
        }
        rows.push(out_row);
    }
    Ok(RowStream {
        schema,
        op: Op::Materialized(rows.into_iter()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn db() -> Database {
        let mut db = Database::new("src");
        db.create_table(
            "t",
            TableSchema::of(vec![ColumnDef::int("id"), ColumnDef::text("acc")]),
        )
        .unwrap();
        for i in 0..100i64 {
            db.insert("t", vec![Value::Int(i), Value::text(format!("P{i:03}"))])
                .unwrap();
        }
        db
    }

    #[test]
    fn scan_rows_are_borrowed() {
        let db = db();
        let mut s = open(&db, &LogicalPlan::scan("t")).unwrap();
        let first = s.next_row().unwrap().unwrap();
        assert!(matches!(first, Cow::Borrowed(_)));
    }

    #[test]
    fn filter_passes_borrowed_rows_through() {
        let db = db();
        let plan = LogicalPlan::scan("t").filter(Expr::col("id").eq(Expr::lit(7i64)));
        let mut s = open(&db, &plan).unwrap();
        let row = s.next_row().unwrap().unwrap();
        assert!(matches!(row, Cow::Borrowed(_)));
        assert_eq!(row[1], Value::text("P007"));
        assert!(s.next_row().unwrap().is_none());
    }

    #[test]
    fn limit_short_circuits_upstream() {
        let db = db();
        let plan = LogicalPlan::scan("t").limit(3);
        let mut s = open(&db, &plan).unwrap();
        let mut n = 0;
        while s.next_row().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn fused_topk_equals_full_sort() {
        let db = db();
        let sorted = LogicalPlan::scan("t").sort(vec![SortKey {
            column: "id".into(),
            ascending: false,
        }]);
        let fused = sorted.clone().offset(5).limit(3);
        let mut s = open(&db, &fused).unwrap();
        let mut ids = Vec::new();
        while let Some(row) = s.next_row().unwrap() {
            ids.push(row[0].clone());
        }
        assert_eq!(ids, vec![Value::Int(94), Value::Int(93), Value::Int(92)]);
    }

    #[test]
    fn index_scan_rechecks_equality() {
        let mut db = Database::new("x");
        db.create_table("m", TableSchema::of(vec![ColumnDef::text("k")]))
            .unwrap();
        // A text column may also store ints; "7" and 7 render identically but
        // are not `=`-equal, so the recheck must drop the int row.
        db.table_mut("m")
            .unwrap()
            .insert(vec![Value::text("7")])
            .unwrap();
        db.table_mut("m")
            .unwrap()
            .insert(vec![Value::Int(7)])
            .unwrap();
        let plan = LogicalPlan::IndexScan {
            table: "m".into(),
            column: "k".into(),
            value: Value::text("7"),
        };
        let mut s = open(&db, &plan).unwrap();
        let row = s.next_row().unwrap().unwrap();
        assert_eq!(row[0], Value::text("7"));
        assert!(s.next_row().unwrap().is_none());
    }
}
