//! Table schemas and column definitions.

use crate::error::{RelError, RelResult};
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (case is preserved, lookups are case-insensitive).
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
    /// Whether NULL values are allowed. Generic imports default to `true`.
    pub nullable: bool,
}

impl ColumnDef {
    /// Create a nullable column of the given type.
    pub fn new(name: impl Into<String>, data_type: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// Create a NOT NULL column of the given type.
    pub fn not_null(name: impl Into<String>, data_type: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// Shorthand for a nullable text column, the dominant case in imported
    /// life-science sources.
    pub fn text(name: impl Into<String>) -> ColumnDef {
        ColumnDef::new(name, DataType::Text)
    }

    /// Shorthand for a nullable integer column (surrogate keys and counters).
    pub fn int(name: impl Into<String>) -> ColumnDef {
        ColumnDef::new(name, DataType::Integer)
    }

    /// Shorthand for a nullable float column.
    pub fn float(name: impl Into<String>) -> ColumnDef {
        ColumnDef::new(name, DataType::Float)
    }
}

/// Outcome of resolving a (possibly qualified) column reference against a
/// schema, see [`TableSchema::resolve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnResolution {
    /// The reference names exactly one column.
    Index(usize),
    /// The reference is an unqualified suffix shared by several qualified
    /// columns; the payload lists the candidates.
    Ambiguous(Vec<String>),
    /// No column matches the reference.
    Unknown,
}

/// The schema of a table: an ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TableSchema {
    columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Build a schema from column definitions. Duplicate column names
    /// (case-insensitive) are rejected.
    pub fn new(columns: Vec<ColumnDef>) -> RelResult<TableSchema> {
        for (i, c) in columns.iter().enumerate() {
            for other in &columns[i + 1..] {
                if c.name.eq_ignore_ascii_case(&other.name) {
                    return Err(RelError::AlreadyExists(format!(
                        "duplicate column name '{}'",
                        c.name
                    )));
                }
            }
        }
        Ok(TableSchema { columns })
    }

    /// Build a schema, panicking on duplicate names. Intended for tests and
    /// static schema literals.
    pub fn of(columns: Vec<ColumnDef>) -> TableSchema {
        TableSchema::new(columns).expect("invalid static schema")
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Index of a column by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column definition by case-insensitive name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Column definition by position.
    pub fn column_at(&self, idx: usize) -> Option<&ColumnDef> {
        self.columns.get(idx)
    }

    /// Require a column index, returning an error naming the column otherwise.
    pub fn require(&self, name: &str) -> RelResult<usize> {
        self.index_of(name)
            .ok_or_else(|| RelError::UnknownColumn(name.to_string()))
    }

    /// Resolve a column reference the way expression evaluation does: a
    /// case-insensitive exact match first, then an unqualified reference
    /// matching the suffix of a qualified column (`accession` matching
    /// `bioentry.accession`) as long as exactly one column has that suffix.
    /// The static analyzer ([`crate::analyze`]) shares this resolution so its
    /// verdicts mirror runtime behaviour exactly.
    pub fn resolve(&self, name: &str) -> ColumnResolution {
        if let Some(idx) = self.index_of(name) {
            return ColumnResolution::Index(idx);
        }
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name
                    .rsplit('.')
                    .next()
                    .is_some_and(|s| s.eq_ignore_ascii_case(name))
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [one] => ColumnResolution::Index(*one),
            [] => ColumnResolution::Unknown,
            several => ColumnResolution::Ambiguous(
                several
                    .iter()
                    .map(|&i| self.columns[i].name.clone())
                    .collect(),
            ),
        }
    }

    /// Append a column, rejecting duplicates. Returns the new column's index.
    pub fn add_column(&mut self, col: ColumnDef) -> RelResult<usize> {
        if self.index_of(&col.name).is_some() {
            return Err(RelError::AlreadyExists(format!(
                "duplicate column name '{}'",
                col.name
            )));
        }
        self.columns.push(col);
        Ok(self.columns.len() - 1)
    }

    /// A new schema with columns from both inputs, prefixing clashing names
    /// with the given qualifiers; used by the join executor.
    pub fn join(&self, other: &TableSchema, left_qual: &str, right_qual: &str) -> TableSchema {
        let mut columns = Vec::with_capacity(self.arity() + other.arity());
        for c in &self.columns {
            let clashes = other.index_of(&c.name).is_some();
            let name = if clashes {
                format!("{left_qual}.{}", c.name)
            } else {
                c.name.clone()
            };
            columns.push(ColumnDef {
                name,
                data_type: c.data_type,
                nullable: true,
            });
        }
        for c in &other.columns {
            let clashes = self.index_of(&c.name).is_some();
            let name = if clashes {
                format!("{right_qual}.{}", c.name)
            } else {
                c.name.clone()
            };
            columns.push(ColumnDef {
                name,
                data_type: c.data_type,
                nullable: true,
            });
        }
        TableSchema { columns }
    }
}

impl fmt::Display for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
            if !c.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::of(vec![
            ColumnDef::int("bioentry_id"),
            ColumnDef::text("accession"),
            ColumnDef::text("description"),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("ACCESSION"), Some(1));
        assert_eq!(s.index_of("Accession"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = TableSchema::new(vec![ColumnDef::text("a"), ColumnDef::int("A")]).unwrap_err();
        assert!(matches!(err, RelError::AlreadyExists(_)));
    }

    #[test]
    fn add_column_rejects_duplicates() {
        let mut s = sample();
        assert!(s.add_column(ColumnDef::text("new_col")).is_ok());
        assert!(s.add_column(ColumnDef::text("accession")).is_err());
        assert_eq!(s.arity(), 4);
    }

    #[test]
    fn require_reports_unknown_column() {
        let s = sample();
        assert_eq!(s.require("accession").unwrap(), 1);
        assert!(matches!(s.require("nope"), Err(RelError::UnknownColumn(_))));
    }

    #[test]
    fn join_qualifies_clashing_names() {
        let left = sample();
        let right = TableSchema::of(vec![
            ColumnDef::int("dbref_id"),
            ColumnDef::text("accession"),
        ]);
        let joined = left.join(&right, "bioentry", "dbref");
        let names = joined.column_names();
        assert!(names.contains(&"bioentry.accession"));
        assert!(names.contains(&"dbref.accession"));
        assert!(names.contains(&"bioentry_id"));
        assert!(names.contains(&"dbref_id"));
        assert_eq!(joined.arity(), 5);
    }

    #[test]
    fn display_includes_types() {
        let s = TableSchema::of(vec![ColumnDef::not_null("id", DataType::Integer)]);
        assert_eq!(s.to_string(), "(id INTEGER NOT NULL)");
    }
}
