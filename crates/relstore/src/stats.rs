//! Per-column statistics ("statistical metadata" in the paper's metadata
//! repository).
//!
//! Link discovery and the primary-relation heuristics rely on value
//! distributions rather than schema semantics: how many distinct values an
//! attribute has, whether values are purely numeric, how long they are and how
//! much their lengths vary, which characters they are drawn from. The paper
//! notes that "these statistics need to be computed only once for each data
//! source and can then be reused" — [`ColumnStats`] is that reusable artifact.

use crate::error::RelResult;
use crate::table::Table;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Character-class composition of a text column, as fractions of non-null
/// values.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CharClassProfile {
    /// Fraction of values consisting only of ASCII digits.
    pub all_digits: f64,
    /// Fraction of values containing at least one non-digit character.
    pub has_non_digit: f64,
    /// Fraction of values containing at least one ASCII letter.
    pub has_letter: f64,
    /// Fraction of values consisting only of characters from the DNA/RNA
    /// alphabet `{A,C,G,T,U,N}` (case-insensitive); a strong signal for
    /// sequence fields.
    pub nucleotide_like: f64,
    /// Fraction of values consisting only of the 20 amino-acid one-letter
    /// codes (plus X/B/Z ambiguity codes); a signal for protein sequences.
    pub amino_acid_like: f64,
    /// Fraction of values containing whitespace (free text rather than keys).
    pub has_whitespace: f64,
}

/// Statistics for a single column of a single table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Total number of rows scanned.
    pub row_count: usize,
    /// Number of NULL values.
    pub null_count: usize,
    /// Number of distinct non-null values.
    pub distinct_count: usize,
    /// Whether all non-null values are distinct (and at least one exists).
    pub is_unique: bool,
    /// Whether every non-null value is numeric (Int/Float or digit-only text).
    pub all_numeric: bool,
    /// Minimum rendered length of non-null values.
    pub min_len: usize,
    /// Maximum rendered length of non-null values.
    pub max_len: usize,
    /// Mean rendered length of non-null values.
    pub avg_len: f64,
    /// Character-class composition.
    pub char_profile: CharClassProfile,
    /// Up to `sample_size` sample values (rendered), for the metadata
    /// repository and for instance-based schema matching.
    pub samples: Vec<String>,
}

impl ColumnStats {
    /// Relative length spread `(max_len - min_len) / max(avg_len, 1)`. The
    /// paper requires accession values "to differ by at most 20 percent in
    /// length"; this is the quantity that threshold applies to.
    pub fn length_spread(&self) -> f64 {
        if self.non_null_count() == 0 {
            return 0.0;
        }
        (self.max_len - self.min_len) as f64 / self.avg_len.max(1.0)
    }

    /// Number of non-null values.
    pub fn non_null_count(&self) -> usize {
        self.row_count - self.null_count
    }

    /// Fraction of rows that are non-null.
    pub fn coverage(&self) -> f64 {
        if self.row_count == 0 {
            0.0
        } else {
            self.non_null_count() as f64 / self.row_count as f64
        }
    }

    /// Distinct values per non-null value (1.0 = key-like, near 0 = code
    /// list). Used by the "attributes with few distinct values should be
    /// excluded" pruning rule.
    pub fn selectivity(&self) -> f64 {
        let n = self.non_null_count();
        if n == 0 {
            0.0
        } else {
            self.distinct_count as f64 / n as f64
        }
    }

    /// Estimated number of rows matched by an equality predicate on this
    /// column, assuming a uniform value distribution: non-null rows divided
    /// by distinct values (at least 1 when any value exists). The rule-based
    /// optimizer uses this to cost index scans and to pick hash-join build
    /// sides.
    pub fn estimated_eq_rows(&self) -> f64 {
        if self.distinct_count == 0 {
            0.0
        } else {
            (self.non_null_count() as f64 / self.distinct_count as f64).max(1.0)
        }
    }

    /// Heuristic: does this column look like it stores biological sequences
    /// (long values over a nucleotide or amino-acid alphabet)?
    pub fn looks_like_sequence(&self) -> bool {
        self.avg_len >= 30.0
            && (self.char_profile.nucleotide_like >= 0.9
                || self.char_profile.amino_acid_like >= 0.9)
    }

    /// Heuristic: does this column look like free text (descriptions,
    /// functional annotation)?
    pub fn looks_like_free_text(&self) -> bool {
        self.char_profile.has_whitespace >= 0.5 && self.avg_len >= 15.0
    }
}

fn is_nucleotide_like(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| matches!(c.to_ascii_uppercase(), 'A' | 'C' | 'G' | 'T' | 'U' | 'N'))
}

fn is_amino_acid_like(s: &str) -> bool {
    const AA: &str = "ACDEFGHIKLMNPQRSTVWYXBZ";
    !s.is_empty() && s.chars().all(|c| AA.contains(c.to_ascii_uppercase()))
}

/// Profile one column of a table, scanning every row.
pub fn profile_column(table: &Table, column: &str, sample_size: usize) -> RelResult<ColumnStats> {
    let idx = table.column_index(column)?;
    let mut null_count = 0usize;
    let mut distinct: HashSet<&Value> = HashSet::new();
    let mut all_numeric = true;
    let mut min_len = usize::MAX;
    let mut max_len = 0usize;
    let mut total_len = 0usize;
    let mut n_digits = 0usize;
    let mut n_non_digit = 0usize;
    let mut n_letter = 0usize;
    let mut n_nuc = 0usize;
    let mut n_aa = 0usize;
    let mut n_ws = 0usize;
    let mut samples = Vec::new();
    let mut non_null = 0usize;

    for row in table.rows() {
        let v = &row[idx];
        if v.is_null() {
            null_count += 1;
            continue;
        }
        non_null += 1;
        distinct.insert(v);
        let rendered = v.render();
        let len = rendered.chars().count();
        min_len = min_len.min(len);
        max_len = max_len.max(len);
        total_len += len;

        let numeric = match v {
            Value::Int(_) | Value::Float(_) => true,
            Value::Text(s) => !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()),
            _ => false,
        };
        if !numeric {
            all_numeric = false;
        }
        if rendered.chars().all(|c| c.is_ascii_digit()) && !rendered.is_empty() {
            n_digits += 1;
        }
        if rendered.chars().any(|c| !c.is_ascii_digit()) {
            n_non_digit += 1;
        }
        if rendered.chars().any(|c| c.is_ascii_alphabetic()) {
            n_letter += 1;
        }
        if is_nucleotide_like(&rendered) {
            n_nuc += 1;
        }
        if is_amino_acid_like(&rendered) {
            n_aa += 1;
        }
        if rendered.chars().any(char::is_whitespace) {
            n_ws += 1;
        }
        if samples.len() < sample_size {
            samples.push(rendered);
        }
    }

    let frac = |n: usize| {
        if non_null == 0 {
            0.0
        } else {
            n as f64 / non_null as f64
        }
    };
    let is_unique = non_null > 0 && distinct.len() == non_null;

    Ok(ColumnStats {
        table: table.name().to_string(),
        column: table
            .schema()
            .column_at(idx)
            .map(|c| c.name.clone())
            .unwrap_or_else(|| column.to_string()),
        row_count: table.row_count(),
        null_count,
        distinct_count: distinct.len(),
        is_unique,
        all_numeric: non_null > 0 && all_numeric,
        min_len: if non_null == 0 { 0 } else { min_len },
        max_len,
        avg_len: if non_null == 0 {
            0.0
        } else {
            total_len as f64 / non_null as f64
        },
        char_profile: CharClassProfile {
            all_digits: frac(n_digits),
            has_non_digit: frac(n_non_digit),
            has_letter: frac(n_letter),
            nucleotide_like: frac(n_nuc),
            amino_acid_like: frac(n_aa),
            has_whitespace: frac(n_ws),
        },
        samples,
    })
}

/// Profile every column of a table.
pub fn profile_table(table: &Table, sample_size: usize) -> RelResult<Vec<ColumnStats>> {
    table
        .schema()
        .columns()
        .iter()
        .map(|c| profile_column(table, &c.name, sample_size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};

    fn table() -> Table {
        let schema = TableSchema::of(vec![
            ColumnDef::int("id"),
            ColumnDef::text("accession"),
            ColumnDef::text("description"),
            ColumnDef::text("sequence"),
        ]);
        let mut t = Table::new("protein", schema);
        let rows = vec![
            (
                1,
                "P12345",
                "serine kinase involved in signalling",
                "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ",
            ),
            (
                2,
                "P67890",
                "membrane transporter",
                "MSDNNNAKVVLIGAGGIGCELLKNLVLTGFSHI",
            ),
            (
                3,
                "Q00001",
                "unknown protein",
                "MAAAKKVVLIGAGGIGCELLKQQQSFVKSHFSR",
            ),
        ];
        for (id, acc, desc, seq) in rows {
            t.insert(vec![
                Value::Int(id),
                Value::text(acc),
                Value::text(desc),
                Value::text(seq),
            ])
            .unwrap();
        }
        t.insert(vec![
            Value::Int(4),
            Value::text("Q99999"),
            Value::Null,
            Value::Null,
        ])
        .unwrap();
        t
    }

    #[test]
    fn profiles_basic_counts() {
        let t = table();
        let s = profile_column(&t, "accession", 10).unwrap();
        assert_eq!(s.row_count, 4);
        assert_eq!(s.null_count, 0);
        assert_eq!(s.distinct_count, 4);
        assert!(s.is_unique);
        assert!(!s.all_numeric);
        assert_eq!(s.min_len, 6);
        assert_eq!(s.max_len, 6);
        assert!((s.avg_len - 6.0).abs() < 1e-9);
        assert_eq!(s.length_spread(), 0.0);
        assert_eq!(s.samples.len(), 4);
    }

    #[test]
    fn profiles_nulls_and_coverage() {
        let t = table();
        let s = profile_column(&t, "description", 2).unwrap();
        assert_eq!(s.null_count, 1);
        assert_eq!(s.non_null_count(), 3);
        assert!((s.coverage() - 0.75).abs() < 1e-9);
        assert_eq!(s.samples.len(), 2);
        assert!(s.looks_like_free_text());
    }

    #[test]
    fn numeric_surrogate_keys_detected() {
        let t = table();
        let s = profile_column(&t, "id", 10).unwrap();
        assert!(s.all_numeric);
        assert!(s.is_unique);
        assert!(s.char_profile.has_non_digit < 1e-9);
        assert!(!s.looks_like_sequence());
    }

    #[test]
    fn sequence_columns_detected() {
        let t = table();
        let s = profile_column(&t, "sequence", 10).unwrap();
        assert!(s.char_profile.amino_acid_like > 0.9);
        assert!(s.looks_like_sequence());
        assert!(!s.looks_like_free_text());
    }

    #[test]
    fn empty_column_is_not_unique_and_has_zero_stats() {
        let schema = TableSchema::of(vec![ColumnDef::text("only_nulls")]);
        let mut t = Table::new("t", schema);
        t.insert(vec![Value::Null]).unwrap();
        let s = profile_column(&t, "only_nulls", 5).unwrap();
        assert!(!s.is_unique);
        assert_eq!(s.distinct_count, 0);
        assert_eq!(s.min_len, 0);
        assert_eq!(s.avg_len, 0.0);
        assert_eq!(s.selectivity(), 0.0);
        assert_eq!(s.length_spread(), 0.0);
    }

    #[test]
    fn estimated_eq_rows_reflects_distinctness() {
        let t = table();
        let unique = profile_column(&t, "accession", 0).unwrap();
        assert_eq!(unique.estimated_eq_rows(), 1.0);
        let schema = TableSchema::of(vec![ColumnDef::text("kind")]);
        let mut dup = Table::new("t", schema);
        for i in 0..10 {
            dup.insert(vec![Value::text(if i % 2 == 0 { "a" } else { "b" })])
                .unwrap();
        }
        let s = profile_column(&dup, "kind", 0).unwrap();
        assert_eq!(s.estimated_eq_rows(), 5.0);
    }

    #[test]
    fn selectivity_distinguishes_keys_from_code_lists() {
        let schema = TableSchema::of(vec![ColumnDef::text("kind")]);
        let mut t = Table::new("t", schema);
        for i in 0..100 {
            t.insert(vec![Value::text(if i % 2 == 0 {
                "gene"
            } else {
                "protein"
            })])
            .unwrap();
        }
        let s = profile_column(&t, "kind", 5).unwrap();
        assert!(s.selectivity() < 0.05);
        assert!(!s.is_unique);
    }

    #[test]
    fn profile_table_covers_all_columns() {
        let t = table();
        let all = profile_table(&t, 3).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[1].column, "accession");
    }

    #[test]
    fn nucleotide_and_amino_acid_detectors() {
        assert!(is_nucleotide_like("ACGTACGTNNN"));
        assert!(is_nucleotide_like("acgtu"));
        assert!(!is_nucleotide_like("ACGX"));
        assert!(!is_nucleotide_like(""));
        assert!(is_amino_acid_like("MKTAYIAKQR"));
        assert!(!is_amino_acid_like("MKTA1"));
    }
}
