//! Executors for logical plans.
//!
//! [`execute`] is the streaming executor: it compiles the plan into a
//! pull-based operator tree ([`crate::stream`]) and materializes only the
//! rows that reach the terminal sink, so `Limit`/`Offset` short-circuit
//! upstream work, `Scan` never clones its table, and `Sort`+`Limit` fuses
//! into a bounded top-k. [`execute_optimized`] additionally runs the plan
//! through the rule-based optimizer ([`crate::optimize`]) first — predicate
//! pushdown, index-scan rewriting, join build-side selection — and is what
//! the serving paths use.
//!
//! [`execute_naive`] is the original materialize-everything evaluator (every
//! operator consumes a whole [`Table`] and produces one). It is kept as the
//! easy-to-audit reference implementation: the property tests check the
//! streaming executor and the optimizer against it row for row, and the
//! `relstore_exec` bench measures the distance between the two.

use crate::catalog::Database;
use crate::error::{RelError, RelResult};
use crate::optimize::optimize;
use crate::plan::{AggFunc, Aggregate, JoinType, LogicalPlan, SortKey};
use crate::schema::{ColumnDef, TableSchema};
use crate::stream;
use crate::table::{Row, Table};
use crate::types::DataType;
use crate::value::Value;
use std::collections::HashMap;

/// Execute a logical plan against a database with the streaming executor,
/// materializing the result as a table.
pub fn execute(db: &Database, plan: &LogicalPlan) -> RelResult<Table> {
    let mut input = stream::open(db, plan)?;
    let mut out = Table::new(result_name(db, plan), input.schema().clone());
    if let Some(hint) = row_count_hint(db, plan) {
        out.reserve(hint);
    }
    while let Some(row) = input.next_row()? {
        out.insert(row.into_owned())?;
    }
    Ok(out)
}

/// Optimize a plan with the rule-based optimizer, then execute it with the
/// streaming executor. This is the path the warehouse serving layer uses.
pub fn execute_optimized(db: &Database, plan: &LogicalPlan) -> RelResult<Table> {
    execute(db, &optimize(db, plan))
}

/// Strict execution: run the static analyzer ([`crate::analyze`]) first and
/// refuse plans with error-severity diagnostics (returning
/// [`RelError::Analysis`]), then optimize and execute. SQL entry points use
/// this so ill-typed queries fail with one precise diagnostic instead of a
/// row-level evaluation error (or, worse, an empty result).
pub fn execute_checked(db: &Database, plan: &LogicalPlan) -> RelResult<Table> {
    if let Some(err) = crate::analyze::analyze(db, plan).to_error() {
        return Err(err);
    }
    execute_optimized(db, plan)
}

/// The name the materialized result table carries, mirroring the naive
/// evaluator: base scans keep the table name, other operators name the result
/// after themselves, and pass-through operators keep their input's name.
fn result_name(db: &Database, plan: &LogicalPlan) -> String {
    match plan {
        LogicalPlan::Scan { table } | LogicalPlan::IndexScan { table, .. } => db
            .table(table)
            .map(|t| t.name().to_string())
            .unwrap_or_else(|_| table.clone()),
        LogicalPlan::Filter { .. } => "filter".to_string(),
        LogicalPlan::Project { .. } => "project".to_string(),
        LogicalPlan::Join { .. } => "join".to_string(),
        LogicalPlan::Aggregate { .. } => "aggregate".to_string(),
        LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Offset { input, .. } => result_name(db, input),
        LogicalPlan::Empty { .. } => "empty".to_string(),
    }
}

/// A cheap upper bound on the result cardinality where one is obvious, so the
/// sink can reserve row storage up front instead of growing it insert by
/// insert. The bound is always anchored to real table sizes — a bare `LIMIT`
/// is *not* a hint, since `LIMIT 2000000000` would otherwise pre-allocate
/// gigabytes for a query that returns a handful of rows.
fn row_count_hint(db: &Database, plan: &LogicalPlan) -> Option<usize> {
    match plan {
        LogicalPlan::Scan { table } => db.table(table).ok().map(Table::row_count),
        LogicalPlan::Limit { input, limit } => {
            row_count_hint(db, input).map(|hint| hint.min(*limit))
        }
        LogicalPlan::Offset { input, offset } => {
            row_count_hint(db, input).map(|hint| hint.saturating_sub(*offset))
        }
        LogicalPlan::Sort { input, .. } => row_count_hint(db, input),
        LogicalPlan::Empty { .. } => Some(0),
        _ => None,
    }
}

/// The output schema of an aggregation, shared by the naive evaluator, the
/// streaming executor and the optimizer's schema derivation.
pub(crate) fn aggregate_schema(
    in_schema: &TableSchema,
    group_by: &[String],
    aggregates: &[Aggregate],
) -> RelResult<TableSchema> {
    let mut cols: Vec<ColumnDef> = Vec::with_capacity(group_by.len() + aggregates.len());
    for g in group_by {
        let dt = in_schema
            .column(g)
            .map(|c| c.data_type)
            .unwrap_or(DataType::Text);
        cols.push(ColumnDef::new(g.clone(), dt));
    }
    for a in aggregates {
        let dt = match a.func {
            AggFunc::Count => DataType::Integer,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum => DataType::Float,
            AggFunc::Min | AggFunc::Max => a
                .column
                .as_deref()
                .and_then(|c| in_schema.column(c).map(|col| col.data_type))
                .unwrap_or(DataType::Text),
        };
        cols.push(ColumnDef::new(a.alias.clone(), dt));
    }
    TableSchema::new(cols)
}

/// Execute a logical plan with the original materializing evaluator: every
/// operator consumes a fully materialized [`Table`] and produces one. Kept as
/// the reference implementation for property tests and benches; serving code
/// should call [`execute`] or [`execute_optimized`].
pub fn execute_naive(db: &Database, plan: &LogicalPlan) -> RelResult<Table> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = db.table(table)?;
            Ok(t.clone())
        }
        LogicalPlan::IndexScan {
            table,
            column,
            value,
        } => {
            // The naive evaluator treats an index scan as its definitional
            // equivalent: scan plus equality filter.
            let t = db.table(table)?;
            let idx = t.column_index(column)?;
            let mut out = t.empty_like();
            for row in t.rows() {
                if row[idx].cmp(value) == std::cmp::Ordering::Equal {
                    out.insert(row.clone())?;
                }
            }
            Ok(out)
        }
        LogicalPlan::Filter { input, predicate } => {
            let t = execute_naive(db, input)?;
            let schema = t.schema().clone();
            let mut out = Table::new("filter", schema.clone());
            for row in t.rows() {
                if predicate.eval_predicate(&schema, row)? {
                    out.insert(row.clone())?;
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, exprs } => {
            let t = execute_naive(db, input)?;
            let in_schema = t.schema().clone();
            let mut cols = Vec::with_capacity(exprs.len());
            for (e, name) in exprs {
                cols.push(ColumnDef::new(name.clone(), e.result_type(&in_schema)));
            }
            let out_schema = TableSchema::new(cols)?;
            let mut out = Table::new("project", out_schema);
            for row in t.rows() {
                let mut new_row = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    new_row.push(e.eval(&in_schema, row)?);
                }
                out.insert(new_row)?;
            }
            Ok(out)
        }
        LogicalPlan::Join {
            left,
            right,
            left_col,
            right_col,
            join_type,
            left_qualifier,
            right_qualifier,
        } => {
            let lt = execute_naive(db, left)?;
            let rt = execute_naive(db, right)?;
            execute_join(
                &lt,
                &rt,
                left_col,
                right_col,
                *join_type,
                left_qualifier,
                right_qualifier,
            )
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let t = execute_naive(db, input)?;
            execute_aggregate(&t, group_by, aggregates)
        }
        LogicalPlan::Sort { input, keys } => {
            let t = execute_naive(db, input)?;
            execute_sort(&t, keys)
        }
        LogicalPlan::Limit { input, limit } => {
            let t = execute_naive(db, input)?;
            let mut out = t.empty_like();
            for row in t.rows().iter().take(*limit) {
                out.insert(row.clone())?;
            }
            Ok(out)
        }
        LogicalPlan::Offset { input, offset } => {
            let t = execute_naive(db, input)?;
            let mut out = t.empty_like();
            for row in t.rows().iter().skip(*offset) {
                out.insert(row.clone())?;
            }
            Ok(out)
        }
        LogicalPlan::Empty { schema } => Ok(Table::new("empty", schema.clone())),
    }
}

fn execute_join(
    left: &Table,
    right: &Table,
    left_col: &str,
    right_col: &str,
    join_type: JoinType,
    left_qual: &str,
    right_qual: &str,
) -> RelResult<Table> {
    let l_idx = left.column_index(left_col)?;
    let r_idx = right.column_index(right_col)?;
    let out_schema = left.schema().join(right.schema(), left_qual, right_qual);
    let mut out = Table::new("join", out_schema);

    // Hash join: build on the right, probe from the left.
    let mut build: HashMap<&Value, Vec<&Row>> = HashMap::with_capacity(right.row_count());
    for row in right.rows() {
        let key = &row[r_idx];
        if key.is_null() {
            continue;
        }
        build.entry(key).or_default().push(row);
    }

    let right_arity = right.schema().arity();
    for lrow in left.rows() {
        let key = &lrow[l_idx];
        let matches = if key.is_null() { None } else { build.get(key) };
        match matches {
            Some(rrows) => {
                for rrow in rrows {
                    let mut combined = Vec::with_capacity(lrow.len() + rrow.len());
                    combined.extend(lrow.iter().cloned());
                    combined.extend(rrow.iter().cloned());
                    out.insert(combined)?;
                }
            }
            None => {
                if join_type == JoinType::LeftOuter {
                    let mut combined = Vec::with_capacity(lrow.len() + right_arity);
                    combined.extend(lrow.iter().cloned());
                    combined.extend(std::iter::repeat_n(Value::Null, right_arity));
                    out.insert(combined)?;
                }
            }
        }
    }
    Ok(out)
}

fn execute_aggregate(
    input: &Table,
    group_by: &[String],
    aggregates: &[Aggregate],
) -> RelResult<Table> {
    let in_schema = input.schema();
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|c| in_schema.require(c))
        .collect::<RelResult<_>>()?;
    let agg_idx: Vec<Option<usize>> = aggregates
        .iter()
        .map(|a| match &a.column {
            Some(c) => in_schema.require(c).map(Some),
            None => Ok(None),
        })
        .collect::<RelResult<_>>()?;

    let out_schema = aggregate_schema(in_schema, group_by, aggregates)?;
    let mut out = Table::new("aggregate", out_schema);

    // Group rows.
    let mut groups: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
    for row in input.rows() {
        let key: Vec<Value> = group_idx.iter().map(|i| row[*i].clone()).collect();
        groups.entry(key).or_default().push(row);
    }
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(Vec::new(), Vec::new());
    }

    // Deterministic output order.
    let mut keys: Vec<Vec<Value>> = groups.keys().cloned().collect();
    keys.sort();

    for key in keys {
        let rows = &groups[&key];
        let mut out_row: Row = key.clone();
        for (a, idx) in aggregates.iter().zip(&agg_idx) {
            out_row.push(compute_aggregate(a.func, *idx, rows)?);
        }
        out.insert(out_row)?;
    }
    Ok(out)
}

fn compute_aggregate(func: AggFunc, col: Option<usize>, rows: &[&Row]) -> RelResult<Value> {
    match func {
        AggFunc::Count => {
            let n = match col {
                None => rows.len(),
                Some(i) => rows.iter().filter(|r| !r[i].is_null()).count(),
            };
            Ok(Value::Int(n as i64))
        }
        AggFunc::Min | AggFunc::Max => {
            let i = col.ok_or_else(|| RelError::Exec("MIN/MAX require a column".into()))?;
            let mut best: Option<&Value> = None;
            for r in rows {
                let v = &r[i];
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = if func == AggFunc::Min { v < b } else { v > b };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.cloned().unwrap_or(Value::Null))
        }
        AggFunc::Sum | AggFunc::Avg => {
            let i = col.ok_or_else(|| RelError::Exec("SUM/AVG require a column".into()))?;
            let mut sum = 0.0f64;
            let mut n = 0usize;
            for r in rows {
                let v = &r[i];
                if v.is_null() {
                    continue;
                }
                let f = v
                    .as_float()
                    .ok_or_else(|| RelError::Exec(format!("non-numeric value '{v}' in SUM/AVG")))?;
                sum += f;
                n += 1;
            }
            if n == 0 {
                return Ok(Value::Null);
            }
            Ok(if func == AggFunc::Sum {
                Value::float(sum)
            } else {
                Value::float(sum / n as f64)
            })
        }
    }
}

fn execute_sort(input: &Table, keys: &[SortKey]) -> RelResult<Table> {
    let schema = input.schema();
    let key_idx: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| schema.require(&k.column).map(|i| (i, k.ascending)))
        .collect::<RelResult<_>>()?;
    let mut rows: Vec<Row> = input.rows().to_vec();
    rows.sort_by(|a, b| {
        for (i, asc) in &key_idx {
            let ord = a[*i].cmp(&b[*i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut out = input.empty_like();
    for row in rows {
        out.insert(row)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::LogicalPlan;

    fn db() -> Database {
        let mut db = Database::new("src");
        db.create_table(
            "bioentry",
            TableSchema::of(vec![
                ColumnDef::int("bioentry_id"),
                ColumnDef::text("accession"),
                ColumnDef::text("name"),
            ]),
        )
        .unwrap();
        db.create_table(
            "dbref",
            TableSchema::of(vec![
                ColumnDef::int("dbref_id"),
                ColumnDef::int("bioentry_id"),
                ColumnDef::text("accession"),
            ]),
        )
        .unwrap();
        for (id, acc, name) in [
            (1, "P11111", "kinA"),
            (2, "P22222", "kinB"),
            (3, "P33333", "phoC"),
        ] {
            db.insert(
                "bioentry",
                vec![Value::Int(id), Value::text(acc), Value::text(name)],
            )
            .unwrap();
        }
        for (id, be, acc) in [(10, 1, "PDB:1ABC"), (11, 1, "GO:0001"), (12, 2, "PDB:2DEF")] {
            db.insert(
                "dbref",
                vec![Value::Int(id), Value::Int(be), Value::text(acc)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn scan_and_filter() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry").filter(Expr::col("name").like("kin%"));
        let result = execute(&db, &plan).unwrap();
        assert_eq!(result.row_count(), 2);
    }

    #[test]
    fn scan_unknown_table_errors() {
        let db = db();
        let plan = LogicalPlan::scan("nope");
        assert!(matches!(
            execute(&db, &plan),
            Err(RelError::UnknownTable(_))
        ));
    }

    #[test]
    fn project_renames_and_computes() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry").project(vec![
            (Expr::col("accession"), "acc".to_string()),
            (
                Expr::binary(
                    crate::expr::BinaryOp::Add,
                    Expr::col("bioentry_id"),
                    Expr::lit(100i64),
                ),
                "shifted".to_string(),
            ),
        ]);
        let result = execute(&db, &plan).unwrap();
        assert_eq!(result.schema().column_names(), vec!["acc", "shifted"]);
        assert_eq!(result.cell(0, "shifted").unwrap(), &Value::Int(101));
    }

    #[test]
    fn inner_join_matches_keys() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry").join(
            LogicalPlan::scan("dbref"),
            "bioentry_id",
            "bioentry_id",
            "bioentry",
            "dbref",
        );
        let result = execute(&db, &plan).unwrap();
        assert_eq!(result.row_count(), 3);
        // Clashing column names are qualified.
        assert!(result.schema().index_of("bioentry.accession").is_some());
        assert!(result.schema().index_of("dbref.accession").is_some());
    }

    #[test]
    fn left_outer_join_pads_nulls() {
        let db = db();
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::scan("bioentry")),
            right: Box::new(LogicalPlan::scan("dbref")),
            left_col: "bioentry_id".into(),
            right_col: "bioentry_id".into(),
            join_type: JoinType::LeftOuter,
            left_qualifier: "bioentry".into(),
            right_qualifier: "dbref".into(),
        };
        let result = execute(&db, &plan).unwrap();
        // bioentry 3 has no dbrefs but must still appear.
        assert_eq!(result.row_count(), 4);
        let unmatched: Vec<_> = result
            .rows()
            .iter()
            .filter(|r| r[0] == Value::Int(3))
            .collect();
        assert_eq!(unmatched.len(), 1);
        assert!(unmatched[0][3].is_null());
    }

    #[test]
    fn aggregate_with_group_by() {
        let db = db();
        let plan = LogicalPlan::scan("dbref").aggregate(
            vec!["bioentry_id".to_string()],
            vec![Aggregate::count_star("n")],
        );
        let result = execute(&db, &plan).unwrap();
        assert_eq!(result.row_count(), 2);
        assert_eq!(result.cell(0, "n").unwrap(), &Value::Int(2));
        assert_eq!(result.cell(1, "n").unwrap(), &Value::Int(1));
    }

    #[test]
    fn global_aggregates() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry").aggregate(
            vec![],
            vec![
                Aggregate::count_star("n"),
                Aggregate::of(AggFunc::Min, "accession", "min_acc"),
                Aggregate::of(AggFunc::Max, "bioentry_id", "max_id"),
                Aggregate::of(AggFunc::Avg, "bioentry_id", "avg_id"),
                Aggregate::of(AggFunc::Sum, "bioentry_id", "sum_id"),
            ],
        );
        let result = execute(&db, &plan).unwrap();
        assert_eq!(result.row_count(), 1);
        assert_eq!(result.cell(0, "n").unwrap(), &Value::Int(3));
        assert_eq!(result.cell(0, "min_acc").unwrap(), &Value::text("P11111"));
        assert_eq!(result.cell(0, "max_id").unwrap(), &Value::Int(3));
        assert_eq!(result.cell(0, "avg_id").unwrap(), &Value::Float(2.0));
        assert_eq!(result.cell(0, "sum_id").unwrap(), &Value::Float(6.0));
    }

    #[test]
    fn aggregate_on_empty_input_with_grouping_returns_no_rows() {
        let mut db = Database::new("x");
        db.create_table("t", TableSchema::of(vec![ColumnDef::int("a")]))
            .unwrap();
        let plan = LogicalPlan::scan("t")
            .aggregate(vec!["a".to_string()], vec![Aggregate::count_star("n")]);
        let result = execute(&db, &plan).unwrap();
        assert_eq!(result.row_count(), 0);
        // Global aggregate over empty input still yields one row.
        let plan = LogicalPlan::scan("t").aggregate(vec![], vec![Aggregate::count_star("n")]);
        let result = execute(&db, &plan).unwrap();
        assert_eq!(result.row_count(), 1);
        assert_eq!(result.cell(0, "n").unwrap(), &Value::Int(0));
    }

    #[test]
    fn sort_and_limit() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry")
            .sort(vec![SortKey {
                column: "accession".into(),
                ascending: false,
            }])
            .limit(2);
        let result = execute(&db, &plan).unwrap();
        assert_eq!(result.row_count(), 2);
        assert_eq!(result.cell(0, "accession").unwrap(), &Value::text("P33333"));
        assert_eq!(result.cell(1, "accession").unwrap(), &Value::text("P22222"));
    }

    #[test]
    fn offset_skips_rows() {
        let db = db();
        let sorted = LogicalPlan::scan("bioentry").sort(vec![SortKey {
            column: "bioentry_id".into(),
            ascending: true,
        }]);
        let result = execute(&db, &sorted.clone().offset(1)).unwrap();
        assert_eq!(result.row_count(), 2);
        assert_eq!(result.cell(0, "bioentry_id").unwrap(), &Value::Int(2));
        // Offset past the end is empty, offset zero is the identity.
        assert_eq!(
            execute(&db, &sorted.clone().offset(10))
                .unwrap()
                .row_count(),
            0
        );
        assert_eq!(execute(&db, &sorted.offset(0)).unwrap().row_count(), 3);
    }

    #[test]
    fn sum_over_text_column_errors() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry")
            .aggregate(vec![], vec![Aggregate::of(AggFunc::Sum, "accession", "s")]);
        assert!(execute(&db, &plan).is_err());
    }
}
