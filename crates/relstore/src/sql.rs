//! A small SQL dialect for the ALADIN "structured queries" access mode.
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT <select-list>
//! FROM <table>
//! [JOIN <table> ON <col> = <col>]*
//! [WHERE <predicate>]
//! [GROUP BY <col> [, <col>]*]
//! [ORDER BY <col> [ASC|DESC] [, ...]]
//! [LIMIT <n>]
//! ```
//!
//! The select list is `*`, a list of (possibly qualified) column names, or
//! aggregate calls `COUNT(*)`, `COUNT(col)`, `SUM(col)`, `MIN(col)`,
//! `MAX(col)`, `AVG(col)`, each optionally followed by `AS alias`.
//! Predicates support comparison operators, `LIKE`, `IS [NOT] NULL`, `AND`,
//! `OR`, `NOT` and parentheses. This intentionally covers exactly what the
//! COLUMBA-style iterative query refinement interface needs, nothing more.
//! A statement may be prefixed with `EXPLAIN` (see [`parse_statement`]) to
//! inspect the optimized plan instead of executing the query.
//!
//! Parse errors are reported through the same [`Diagnostic`] type the static
//! analyzer ([`crate::analyze`]) uses: every token carries its byte-offset
//! [`Span`] into the source text, and an error renders as a stable
//! `error[P0xx]: message` line followed by a caret block pointing at the
//! offending bytes. Codes: `P001` unexpected character, `P002` unterminated
//! string literal, `P003` unexpected token, `P004` invalid number, `P005`
//! grammar constraint (GROUP BY membership, `*` with aggregates, `SUM(*)`).

use crate::analyze::{Diagnostic, Severity, Span};
use crate::error::{RelError, RelResult};
use crate::expr::{BinaryOp, Expr};
use crate::plan::{AggFunc, Aggregate, JoinType, LogicalPlan, SortKey};
use crate::value::Value;

/// A parsed SQL statement: a query, or a request to explain one.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` query to execute.
    Select(LogicalPlan),
    /// `EXPLAIN SELECT ...`: show the (optimized) plan instead of running it.
    Explain(LogicalPlan),
}

/// Parse a SQL string into a logical plan.
pub fn parse(sql: &str) -> RelResult<LogicalPlan> {
    match parse_statement(sql)? {
        Statement::Select(plan) | Statement::Explain(plan) => Ok(plan),
    }
}

/// Parse a SQL statement, distinguishing `EXPLAIN SELECT ...` from a plain
/// `SELECT ...`.
pub fn parse_statement(sql: &str) -> RelResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        source: sql,
        tokens,
        pos: 0,
    };
    let explain = p.accept_keyword("EXPLAIN");
    let plan = p.parse_select()?;
    if p.pos != p.tokens.len() {
        return Err(p.error_here(
            "P003",
            format!("unexpected trailing input at token '{}'", p.peek_text()),
        ));
    }
    Ok(if explain {
        Statement::Explain(plan)
    } else {
        Statement::Select(plan)
    })
}

/// Build a [`RelError::Parse`] from a parse diagnostic: the stable one-line
/// rendering plus a caret block pointing into `source`.
fn parse_error(source: &str, code: &'static str, message: String, span: Span) -> RelError {
    let diagnostic = Diagnostic {
        severity: Severity::Error,
        code,
        message,
        path: String::new(),
        span: Some(span),
    };
    RelError::Parse(diagnostic.render_with_source(source))
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(String),
    Str(String),
    Symbol(char),
    // Two-character operators.
    Ne,
    Le,
    Ge,
}

/// Tokenize `input`, attaching to every token the byte-offset [`Span`] it
/// was read from, so parse errors can point back into the source text.
fn tokenize(input: &str) -> RelResult<Vec<(Token, Span)>> {
    let mut out: Vec<(Token, Span)> = Vec::new();
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    // Byte offset of the i-th character (or end of input past the last one).
    let byte_at = |i: usize| chars.get(i).map(|(b, _)| *b).unwrap_or(input.len());
    let mut i = 0;
    while i < chars.len() {
        let (start, c) = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '\'' {
            let mut s = String::new();
            i += 1;
            let mut closed = false;
            while i < chars.len() {
                if chars[i].1 == '\'' {
                    // doubled quote = escaped quote
                    if i + 1 < chars.len() && chars[i + 1].1 == '\'' {
                        s.push('\'');
                        i += 2;
                        continue;
                    }
                    closed = true;
                    i += 1;
                    break;
                }
                s.push(chars[i].1);
                i += 1;
            }
            if !closed {
                return Err(parse_error(
                    input,
                    "P002",
                    "unterminated string literal".into(),
                    Span::new(start, input.len()),
                ));
            }
            out.push((Token::Str(s), Span::new(start, byte_at(i))));
            continue;
        }
        if c.is_ascii_digit()
            || (c == '-'
                && i + 1 < chars.len()
                && chars[i + 1].1.is_ascii_digit()
                && starts_value(&out))
        {
            let mut s = String::new();
            s.push(c);
            i += 1;
            while i < chars.len() && (chars[i].1.is_ascii_digit() || chars[i].1 == '.') {
                s.push(chars[i].1);
                i += 1;
            }
            out.push((Token::Number(s), Span::new(start, byte_at(i))));
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < chars.len()
                && (chars[i].1.is_ascii_alphanumeric() || chars[i].1 == '_' || chars[i].1 == '.')
            {
                s.push(chars[i].1);
                i += 1;
            }
            out.push((Token::Ident(s), Span::new(start, byte_at(i))));
            continue;
        }
        match c {
            '<' if i + 1 < chars.len() && chars[i + 1].1 == '>' => {
                out.push((Token::Ne, Span::new(start, byte_at(i + 2))));
                i += 2;
            }
            '!' if i + 1 < chars.len() && chars[i + 1].1 == '=' => {
                out.push((Token::Ne, Span::new(start, byte_at(i + 2))));
                i += 2;
            }
            '<' if i + 1 < chars.len() && chars[i + 1].1 == '=' => {
                out.push((Token::Le, Span::new(start, byte_at(i + 2))));
                i += 2;
            }
            '>' if i + 1 < chars.len() && chars[i + 1].1 == '=' => {
                out.push((Token::Ge, Span::new(start, byte_at(i + 2))));
                i += 2;
            }
            '(' | ')' | ',' | '*' | '=' | '<' | '>' | '+' | '-' | '/' => {
                out.push((Token::Symbol(c), Span::new(start, byte_at(i + 1))));
                i += 1;
            }
            other => {
                return Err(parse_error(
                    input,
                    "P001",
                    format!("unexpected character '{other}'"),
                    Span::new(start, byte_at(i + 1)),
                ));
            }
        }
    }
    Ok(out)
}

/// Heuristic: a '-' starts a negative number literal only if the previous
/// token cannot end a value expression.
fn starts_value(tokens: &[(Token, Span)]) -> bool {
    !matches!(
        tokens.last().map(|(t, _)| t),
        Some(Token::Ident(_))
            | Some(Token::Number(_))
            | Some(Token::Str(_))
            | Some(Token::Symbol(')'))
    )
}

struct Parser<'s> {
    source: &'s str,
    tokens: Vec<(Token, Span)>,
    pos: usize,
}

#[derive(Debug)]
enum SelectItem {
    Star,
    Column(String, Option<String>),
    Aggregate(Aggregate),
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    /// The span of the current token, or a zero-width span at the end of the
    /// source when all input has been consumed.
    fn current_span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| Span::new(self.source.len(), self.source.len()))
    }

    /// A parse error anchored to an explicit span.
    fn error_at(&self, span: Span, code: &'static str, message: String) -> RelError {
        parse_error(self.source, code, message, span)
    }

    /// A parse error anchored to the current token.
    fn error_here(&self, code: &'static str, message: String) -> RelError {
        self.error_at(self.current_span(), code, message)
    }

    fn peek_text(&self) -> String {
        match self.peek() {
            Some(t) => token_text(t),
            None => "<end of input>".into(),
        }
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> RelResult<()> {
        if self.accept_keyword(kw) {
            Ok(())
        } else {
            Err(self.error_here(
                "P003",
                format!("expected '{kw}', found '{}'", self.peek_text()),
            ))
        }
    }

    fn accept_symbol(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, c: char) -> RelResult<()> {
        if self.accept_symbol(c) {
            Ok(())
        } else {
            Err(self.error_here(
                "P003",
                format!("expected '{c}', found '{}'", self.peek_text()),
            ))
        }
    }

    fn expect_ident(&mut self) -> RelResult<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error_here(
                "P003",
                format!("expected identifier, found '{}'", self.peek_text()),
            )),
        }
    }

    fn parse_select(&mut self) -> RelResult<LogicalPlan> {
        self.expect_keyword("SELECT")?;
        let items = self.parse_select_list()?;
        self.expect_keyword("FROM")?;
        let base_table = self.expect_ident()?;
        let mut plan = LogicalPlan::scan(base_table.clone());
        let mut last_table = base_table;

        while self.accept_keyword("JOIN") {
            let right_table = self.expect_ident()?;
            self.expect_keyword("ON")?;
            let left_col = self.expect_ident()?;
            self.expect_symbol('=')?;
            let right_col = self.expect_ident()?;
            // Columns may be written on either side of `=`; associate them by
            // qualifier when present, otherwise assume left-to-right order.
            let (lc, rc) = orient_join_columns(&left_col, &right_col, &last_table, &right_table);
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(LogicalPlan::scan(right_table.clone())),
                left_col: lc,
                right_col: rc,
                join_type: JoinType::Inner,
                left_qualifier: last_table.clone(),
                right_qualifier: right_table.clone(),
            };
            last_table = right_table;
        }

        if self.accept_keyword("WHERE") {
            let predicate = self.parse_expr()?;
            plan = plan.filter(predicate);
        }

        let mut group_by: Vec<String> = Vec::new();
        if self.accept_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expect_ident()?);
                if !self.accept_symbol(',') {
                    break;
                }
            }
        }

        // Build projection / aggregation from the select list.
        let has_aggregates = items
            .iter()
            .any(|(i, _)| matches!(i, SelectItem::Aggregate(_)));
        if has_aggregates || !group_by.is_empty() {
            let mut aggregates = Vec::new();
            for (item, span) in &items {
                match item {
                    SelectItem::Aggregate(a) => aggregates.push(a.clone()),
                    SelectItem::Column(name, _) => {
                        if !group_by.iter().any(|g| g.eq_ignore_ascii_case(name)) {
                            return Err(self.error_at(
                                *span,
                                "P005",
                                format!("column '{name}' must appear in GROUP BY"),
                            ));
                        }
                    }
                    SelectItem::Star => {
                        return Err(self.error_at(
                            *span,
                            "P005",
                            "'*' cannot be combined with aggregates".into(),
                        ))
                    }
                }
            }
            plan = plan.aggregate(group_by, aggregates);
        } else if !(items.len() == 1 && matches!(items[0].0, SelectItem::Star)) {
            let exprs: Vec<(Expr, String)> = items
                .iter()
                .map(|(i, _)| match i {
                    SelectItem::Column(name, alias) => (
                        Expr::col(name.clone()),
                        alias.clone().unwrap_or_else(|| name.clone()),
                    ),
                    _ => unreachable!("star/aggregate handled above"),
                })
                .collect();
            plan = plan.project(exprs);
        }

        if self.accept_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let mut keys = Vec::new();
            loop {
                let column = self.expect_ident()?;
                let ascending = if self.accept_keyword("DESC") {
                    false
                } else {
                    self.accept_keyword("ASC");
                    true
                };
                keys.push(SortKey { column, ascending });
                if !self.accept_symbol(',') {
                    break;
                }
            }
            plan = plan.sort(keys);
        }

        // LIMIT [n] and OFFSET [m] in either standard order (`LIMIT n OFFSET
        // m`) or alone. OFFSET applies before LIMIT regardless of the order
        // the clauses are written in, matching SQL semantics.
        let mut limit: Option<usize> = None;
        let mut offset: Option<usize> = None;
        loop {
            if limit.is_none() && self.accept_keyword("LIMIT") {
                limit = Some(self.expect_count("LIMIT")?);
            } else if offset.is_none() && self.accept_keyword("OFFSET") {
                offset = Some(self.expect_count("OFFSET")?);
            } else {
                break;
            }
        }
        if let Some(offset) = offset {
            plan = plan.offset(offset);
        }
        if let Some(limit) = limit {
            plan = plan.limit(limit);
        }

        Ok(plan)
    }

    /// Parse the non-negative integer operand of LIMIT / OFFSET.
    fn expect_count(&mut self, clause: &str) -> RelResult<usize> {
        let span = self.current_span();
        match self.peek() {
            Some(Token::Number(n)) => {
                let n = n.clone();
                self.pos += 1;
                n.parse()
                    .map_err(|_| self.error_at(span, "P004", format!("invalid {clause} '{n}'")))
            }
            _ => Err(self.error_at(
                span,
                "P003",
                format!(
                    "expected number after {clause}, found '{}'",
                    self.peek_text()
                ),
            )),
        }
    }

    fn parse_select_list(&mut self) -> RelResult<Vec<(SelectItem, Span)>> {
        let mut items = Vec::new();
        loop {
            let span = self.current_span();
            items.push((self.parse_select_item()?, span));
            if !self.accept_symbol(',') {
                break;
            }
        }
        Ok(items)
    }

    fn parse_select_item(&mut self) -> RelResult<SelectItem> {
        if self.accept_symbol('*') {
            return Ok(SelectItem::Star);
        }
        let ident = self.expect_ident()?;
        let func = match ident.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        };
        if let Some(func) = func {
            if self.accept_symbol('(') {
                let column = if self.accept_symbol('*') {
                    if func != AggFunc::Count {
                        return Err(self.error_here("P005", format!("{func}(*) is not supported")));
                    }
                    None
                } else {
                    Some(self.expect_ident()?)
                };
                self.expect_symbol(')')?;
                let default_alias = match &column {
                    Some(c) => format!("{}({})", func, c).to_lowercase(),
                    None => format!("{func}(*)").to_lowercase(),
                };
                let alias = if self.accept_keyword("AS") {
                    self.expect_ident()?
                } else {
                    default_alias
                };
                return Ok(SelectItem::Aggregate(Aggregate {
                    func,
                    column,
                    alias,
                }));
            }
        }
        let alias = if self.accept_keyword("AS") {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Column(ident, alias))
    }

    // Expression grammar: or_expr := and_expr (OR and_expr)*
    fn parse_expr(&mut self) -> RelResult<Expr> {
        let mut left = self.parse_and()?;
        while self.accept_keyword("OR") {
            let right = self.parse_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> RelResult<Expr> {
        let mut left = self.parse_not()?;
        while self.accept_keyword("AND") {
            let right = self.parse_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> RelResult<Expr> {
        if self.accept_keyword("NOT") {
            let inner = self.parse_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> RelResult<Expr> {
        let left = self.parse_term()?;
        if self.accept_keyword("IS") {
            let negated = self.accept_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(if negated {
                Expr::IsNotNull(Box::new(left))
            } else {
                Expr::IsNull(Box::new(left))
            });
        }
        if self.accept_keyword("LIKE") {
            let right = self.parse_term()?;
            return Ok(Expr::binary(BinaryOp::Like, left, right));
        }
        let op = match self.peek() {
            Some(Token::Symbol('=')) => Some(BinaryOp::Eq),
            Some(Token::Ne) => Some(BinaryOp::Ne),
            Some(Token::Symbol('<')) => Some(BinaryOp::Lt),
            Some(Token::Symbol('>')) => Some(BinaryOp::Gt),
            Some(Token::Le) => Some(BinaryOp::Le),
            Some(Token::Ge) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_term()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> RelResult<Expr> {
        if self.accept_symbol('(') {
            let e = self.parse_expr()?;
            self.expect_symbol(')')?;
            return Ok(e);
        }
        let span = self.current_span();
        match self.next() {
            Some(Token::Ident(s)) => {
                if s.eq_ignore_ascii_case("NULL") {
                    Ok(Expr::lit(Value::Null))
                } else if s.eq_ignore_ascii_case("TRUE") {
                    Ok(Expr::lit(true))
                } else if s.eq_ignore_ascii_case("FALSE") {
                    Ok(Expr::lit(false))
                } else {
                    Ok(Expr::col(s))
                }
            }
            Some(Token::Number(n)) => {
                if n.contains('.') {
                    let f: f64 = n.parse().map_err(|_| {
                        self.error_at(span, "P004", format!("invalid number '{n}'"))
                    })?;
                    Ok(Expr::lit(f))
                } else {
                    let i: i64 = n.parse().map_err(|_| {
                        self.error_at(span, "P004", format!("invalid number '{n}'"))
                    })?;
                    Ok(Expr::lit(i))
                }
            }
            Some(Token::Str(s)) => Ok(Expr::lit(Value::text(s))),
            Some(other) => Err(self.error_at(
                span,
                "P003",
                format!("expected a term, found '{}'", token_text(&other)),
            )),
            None => Err(self.error_at(span, "P003", "expected a term, found end of input".into())),
        }
    }
}

/// Human-readable rendering of a token for error messages.
fn token_text(t: &Token) -> String {
    match t {
        Token::Ident(s) => s.clone(),
        Token::Number(s) => s.clone(),
        Token::Str(s) => format!("'{s}'"),
        Token::Symbol(c) => c.to_string(),
        Token::Ne => "<>".into(),
        Token::Le => "<=".into(),
        Token::Ge => ">=".into(),
    }
}

/// Decide which side of `a = b` in a JOIN ... ON clause belongs to the left
/// (already joined) plan and which to the newly joined right table, using the
/// qualifiers when given.
fn orient_join_columns(a: &str, b: &str, _left_table: &str, right_table: &str) -> (String, String) {
    let belongs_right = |col: &str| {
        col.split('.')
            .next()
            .is_some_and(|q| q.eq_ignore_ascii_case(right_table))
    };
    if belongs_right(a) && !belongs_right(b) {
        (strip_qualifier(b), strip_qualifier(a))
    } else {
        (strip_qualifier(a), strip_qualifier(b))
    }
}

/// Remove a leading `table.` qualifier; the executor resolves unqualified
/// suffixes and qualifies clashing names itself.
fn strip_qualifier(col: &str) -> String {
    match col.split_once('.') {
        Some((_, c)) => c.to_string(),
        None => col.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::exec::execute;
    use crate::schema::{ColumnDef, TableSchema};

    fn db() -> Database {
        let mut db = Database::new("src");
        db.create_table(
            "bioentry",
            TableSchema::of(vec![
                ColumnDef::int("bioentry_id"),
                ColumnDef::text("accession"),
                ColumnDef::text("name"),
            ]),
        )
        .unwrap();
        db.create_table(
            "dbref",
            TableSchema::of(vec![
                ColumnDef::int("dbref_id"),
                ColumnDef::int("bioentry_id"),
                ColumnDef::text("target"),
            ]),
        )
        .unwrap();
        for (id, acc, name) in [
            (1, "P11111", "kinA"),
            (2, "P22222", "kinB"),
            (3, "Q33333", "phoC"),
        ] {
            db.insert(
                "bioentry",
                vec![Value::Int(id), Value::text(acc), Value::text(name)],
            )
            .unwrap();
        }
        for (id, be, tgt) in [(10, 1, "PDB:1ABC"), (11, 2, "PDB:2DEF"), (12, 2, "GO:0005")] {
            db.insert(
                "dbref",
                vec![Value::Int(id), Value::Int(be), Value::text(tgt)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn select_star() {
        let db = db();
        let plan = parse("SELECT * FROM bioentry").unwrap();
        let r = execute(&db, &plan).unwrap();
        assert_eq!(r.row_count(), 3);
        assert_eq!(r.schema().arity(), 3);
    }

    #[test]
    fn select_columns_with_where_and_like() {
        let db = db();
        let plan = parse("SELECT accession FROM bioentry WHERE accession LIKE 'P%'").unwrap();
        let r = execute(&db, &plan).unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(r.schema().column_names(), vec!["accession"]);
    }

    #[test]
    fn where_with_and_or_not_parens() {
        let db = db();
        let plan = parse(
            "SELECT * FROM bioentry WHERE (accession LIKE 'P%' AND NOT name = 'kinA') OR bioentry_id = 3",
        )
        .unwrap();
        let r = execute(&db, &plan).unwrap();
        assert_eq!(r.row_count(), 2);
    }

    #[test]
    fn join_on_qualified_columns() {
        let db = db();
        let plan = parse(
            "SELECT name, target FROM bioentry JOIN dbref ON bioentry.bioentry_id = dbref.bioentry_id WHERE target LIKE 'PDB%'",
        )
        .unwrap();
        let r = execute(&db, &plan).unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(r.schema().column_names(), vec!["name", "target"]);
    }

    #[test]
    fn join_with_reversed_on_order() {
        let db = db();
        let plan = parse(
            "SELECT name FROM bioentry JOIN dbref ON dbref.bioentry_id = bioentry.bioentry_id",
        )
        .unwrap();
        let r = execute(&db, &plan).unwrap();
        assert_eq!(r.row_count(), 3);
    }

    #[test]
    fn group_by_and_aggregates() {
        let db = db();
        let plan = parse(
            "SELECT bioentry_id, COUNT(*) AS n FROM dbref GROUP BY bioentry_id ORDER BY n DESC",
        )
        .unwrap();
        let r = execute(&db, &plan).unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(r.cell(0, "n").unwrap(), &Value::Int(2));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let db = db();
        let plan = parse("SELECT COUNT(*) AS n, MAX(accession) AS m FROM bioentry").unwrap();
        let r = execute(&db, &plan).unwrap();
        assert_eq!(r.cell(0, "n").unwrap(), &Value::Int(3));
        assert_eq!(r.cell(0, "m").unwrap(), &Value::text("Q33333"));
    }

    #[test]
    fn order_by_and_limit() {
        let db = db();
        let plan = parse("SELECT accession FROM bioentry ORDER BY accession DESC LIMIT 1").unwrap();
        let r = execute(&db, &plan).unwrap();
        assert_eq!(r.row_count(), 1);
        assert_eq!(r.cell(0, "accession").unwrap(), &Value::text("Q33333"));
    }

    #[test]
    fn offset_paginates_after_order_by() {
        let db = db();
        let plan =
            parse("SELECT accession FROM bioentry ORDER BY accession LIMIT 1 OFFSET 1").unwrap();
        let r = execute(&db, &plan).unwrap();
        assert_eq!(r.row_count(), 1);
        assert_eq!(r.cell(0, "accession").unwrap(), &Value::text("P22222"));

        // OFFSET without LIMIT, and OFFSET written before LIMIT, both work.
        let plan = parse("SELECT accession FROM bioentry ORDER BY accession OFFSET 2").unwrap();
        let r = execute(&db, &plan).unwrap();
        assert_eq!(r.row_count(), 1);
        assert_eq!(r.cell(0, "accession").unwrap(), &Value::text("Q33333"));
        let plan =
            parse("SELECT accession FROM bioentry ORDER BY accession OFFSET 1 LIMIT 1").unwrap();
        let r = execute(&db, &plan).unwrap();
        assert_eq!(r.cell(0, "accession").unwrap(), &Value::text("P22222"));

        // Offset past the end yields no rows.
        let plan = parse("SELECT * FROM bioentry OFFSET 99").unwrap();
        assert_eq!(execute(&db, &plan).unwrap().row_count(), 0);

        // Malformed operands are reported.
        assert!(parse("SELECT * FROM t OFFSET abc").is_err());
        assert!(parse("SELECT * FROM t LIMIT 1 OFFSET").is_err());
        assert!(parse("SELECT * FROM t OFFSET 1 OFFSET 2").is_err());
    }

    #[test]
    fn is_null_and_is_not_null() {
        let mut db = db();
        db.insert(
            "bioentry",
            vec![Value::Int(4), Value::text("X1"), Value::Null],
        )
        .unwrap();
        let plan = parse("SELECT * FROM bioentry WHERE name IS NULL").unwrap();
        assert_eq!(execute(&db, &plan).unwrap().row_count(), 1);
        let plan = parse("SELECT * FROM bioentry WHERE name IS NOT NULL").unwrap();
        assert_eq!(execute(&db, &plan).unwrap().row_count(), 3);
    }

    #[test]
    fn string_escaping() {
        let plan = parse("SELECT * FROM t WHERE name = 'it''s'").unwrap();
        match plan {
            LogicalPlan::Filter { predicate, .. } => {
                assert!(predicate.to_string().contains("it's"));
            }
            _ => panic!("expected filter"),
        }
    }

    #[test]
    fn explain_statements_are_recognized() {
        let stmt = parse_statement("EXPLAIN SELECT * FROM bioentry LIMIT 1").unwrap();
        match stmt {
            Statement::Explain(plan) => {
                assert!(matches!(plan, LogicalPlan::Limit { .. }));
            }
            other => panic!("expected Explain, got {other:?}"),
        }
        let stmt = parse_statement("SELECT * FROM bioentry").unwrap();
        assert!(matches!(stmt, Statement::Select(_)));
        // `parse` keeps returning the bare plan either way.
        assert!(parse("EXPLAIN SELECT * FROM bioentry").is_ok());
        assert!(parse_statement("EXPLAIN").is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT * t").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t LIMIT abc").is_err());
        assert!(parse("SELECT * FROM t extra garbage").is_err());
        assert!(parse("SELECT * FROM t WHERE name = 'unterminated").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
        assert!(parse("SELECT name, COUNT(*) FROM t").is_err());
    }

    fn parse_err_message(sql: &str) -> String {
        match parse(sql) {
            Err(crate::error::RelError::Parse(m)) => m,
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_caret_context() {
        let msg = parse_err_message("SELECT * FORM t");
        assert!(
            msg.contains("error[P003]: expected 'FROM', found 'FORM'"),
            "{msg}"
        );
        assert!(msg.contains("| SELECT * FORM t"), "{msg}");
        assert!(msg.contains("|          ^^^^"), "{msg}");
    }

    #[test]
    fn parse_error_codes_cover_the_failure_classes() {
        // P001: a character the tokenizer does not understand.
        assert!(parse("SELECT * FROM t WHERE a @ 1").is_err());
        let msg = parse_err_message("SELECT * FROM t WHERE a @ 1");
        assert!(msg.contains("error[P001]"), "{msg}");

        // P002: unterminated string, caret extends to end of input.
        let msg = parse_err_message("SELECT * FROM t WHERE name = 'oops");
        assert!(
            msg.contains("error[P002]: unterminated string literal"),
            "{msg}"
        );
        assert!(msg.contains("^"), "{msg}");

        // P003: trailing input after a complete statement.
        let msg = parse_err_message("SELECT * FROM t extra");
        assert!(msg.contains("error[P003]"), "{msg}");
        assert!(msg.contains("trailing input"), "{msg}");

        // P003 at end of input: missing term after WHERE.
        let msg = parse_err_message("SELECT * FROM t WHERE");
        assert!(msg.contains("error[P003]"), "{msg}");
        assert!(msg.contains("end of input"), "{msg}");

        // P004: LIMIT operand too large to fit.
        let msg = parse_err_message("SELECT * FROM t LIMIT 99999999999999999999999999");
        assert!(msg.contains("error[P004]"), "{msg}");

        // P005: grammar constraints.
        let msg = parse_err_message("SELECT SUM(*) FROM t");
        assert!(
            msg.contains("error[P005]: SUM(*) is not supported"),
            "{msg}"
        );
        let msg = parse_err_message("SELECT name, COUNT(*) FROM t");
        assert!(
            msg.contains("error[P005]: column 'name' must appear in GROUP BY"),
            "{msg}"
        );
        assert!(msg.contains("| SELECT name, COUNT(*) FROM t"), "{msg}");
        let msg = parse_err_message("SELECT *, COUNT(*) FROM t");
        assert!(
            msg.contains("error[P005]: '*' cannot be combined with aggregates"),
            "{msg}"
        );
    }

    #[test]
    fn negative_numbers_and_floats() {
        let db = {
            let mut db = Database::new("x");
            db.create_table(
                "m",
                TableSchema::of(vec![ColumnDef::int("v"), ColumnDef::float("s")]),
            )
            .unwrap();
            db.insert("m", vec![Value::Int(-5), Value::Float(0.25)])
                .unwrap();
            db.insert("m", vec![Value::Int(5), Value::Float(0.75)])
                .unwrap();
            db
        };
        let plan = parse("SELECT * FROM m WHERE v < -1").unwrap();
        assert_eq!(execute(&db, &plan).unwrap().row_count(), 1);
        let plan = parse("SELECT * FROM m WHERE s >= 0.5").unwrap();
        assert_eq!(execute(&db, &plan).unwrap().row_count(), 1);
    }
}
