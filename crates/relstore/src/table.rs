//! Row-oriented table storage.

use crate::error::{RelError, RelResult};
use crate::schema::{ColumnDef, TableSchema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A single row: values in schema column order.
pub type Row = Vec<Value>;

/// A named relational table: a schema plus rows.
///
/// Storage is row-oriented because the ALADIN discovery steps iterate whole
/// rows (imports, duplicate detection) about as often as whole columns
/// (uniqueness checks, value-set comparisons); column access is provided by
/// [`Table::column_values`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: TableSchema,
    rows: Vec<Row>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: TableSchema) -> Table {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Create an empty table with pre-allocated row storage. Operators that
    /// know (a bound on) their output cardinality use this so inserting does
    /// not reallocate row by row.
    pub fn with_capacity(name: impl Into<String>, schema: TableSchema, rows: usize) -> Table {
        Table {
            name: name.into(),
            schema,
            rows: Vec::with_capacity(rows),
        }
    }

    /// Reserve space for at least `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (used by importers when disambiguating source names).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// A single row by position.
    pub fn row(&self, idx: usize) -> Option<&Row> {
        self.rows.get(idx)
    }

    /// Append a row after checking arity and (loosely) column types. Values of
    /// the wrong type are accepted if the column type accepts them (e.g. Int
    /// into Float or anything into Text as its rendered form is meaningful),
    /// otherwise an error is returned.
    pub fn insert(&mut self, row: Row) -> RelResult<()> {
        if row.len() != self.schema.arity() {
            return Err(RelError::SchemaMismatch(format!(
                "table '{}' expects {} values, got {}",
                self.name,
                self.schema.arity(),
                row.len()
            )));
        }
        for (idx, value) in row.iter().enumerate() {
            let col = self.schema.column_at(idx).expect("index within arity");
            if let Some(vt) = value.data_type() {
                if !col.data_type.accepts(vt) {
                    return Err(RelError::SchemaMismatch(format!(
                        "column '{}.{}' of type {} cannot store value '{}' of type {}",
                        self.name, col.name, col.data_type, value, vt
                    )));
                }
            } else if !col.nullable {
                return Err(RelError::ConstraintViolation(format!(
                    "column '{}.{}' is NOT NULL",
                    self.name, col.name
                )));
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Append many rows; stops at the first failing row and reports it.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> RelResult<usize> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> RelResult<usize> {
        self.schema.require(name)
    }

    /// All values of a column, in row order.
    pub fn column_values(&self, name: &str) -> RelResult<Vec<&Value>> {
        let idx = self.column_index(name)?;
        Ok(self.rows.iter().map(|r| &r[idx]).collect())
    }

    /// The set of distinct non-null values of a column.
    pub fn distinct_values(&self, name: &str) -> RelResult<HashSet<Value>> {
        let idx = self.column_index(name)?;
        Ok(self
            .rows
            .iter()
            .map(|r| &r[idx])
            .filter(|v| !v.is_null())
            .cloned()
            .collect())
    }

    /// Whether all non-null values of the column are pairwise distinct and the
    /// column has at least one non-null value. This is the scan behind
    /// ALADIN's "detect unique attributes by issuing a SQL query for each
    /// attribute" step.
    pub fn column_is_unique(&self, name: &str) -> RelResult<bool> {
        let idx = self.column_index(name)?;
        let mut seen: HashSet<&Value> = HashSet::with_capacity(self.rows.len());
        let mut non_null = 0usize;
        for row in &self.rows {
            let v = &row[idx];
            if v.is_null() {
                continue;
            }
            non_null += 1;
            if !seen.insert(v) {
                return Ok(false);
            }
        }
        Ok(non_null > 0)
    }

    /// Retain only rows for which the predicate returns true.
    pub fn retain<F: FnMut(&Row) -> bool>(&mut self, f: F) {
        self.rows.retain(f);
    }

    /// Look up a cell by row index and column name.
    pub fn cell(&self, row_idx: usize, column: &str) -> RelResult<&Value> {
        let c = self.column_index(column)?;
        self.rows
            .get(row_idx)
            .map(|r| &r[c])
            .ok_or_else(|| RelError::Exec(format!("row {row_idx} out of range")))
    }

    /// Find the first row index where `column` equals `value` (strict
    /// equality).
    pub fn find_first(&self, column: &str, value: &Value) -> RelResult<Option<usize>> {
        let idx = self.column_index(column)?;
        Ok(self.rows.iter().position(|r| &r[idx] == value))
    }

    /// An empty table with the same name and schema.
    pub fn empty_like(&self) -> Table {
        Table::new(self.name.clone(), self.schema.clone())
    }

    /// Add a column filled with NULLs to an existing table; returns the new
    /// column index.
    pub fn add_column(&mut self, col: ColumnDef) -> RelResult<usize> {
        let idx = self.schema.add_column(col)?;
        for row in &mut self.rows {
            row.push(Value::Null);
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn bioentry() -> Table {
        let schema = TableSchema::of(vec![
            ColumnDef::int("bioentry_id"),
            ColumnDef::text("accession"),
            ColumnDef::text("description"),
        ]);
        let mut t = Table::new("bioentry", schema);
        t.insert(vec![
            Value::Int(1),
            Value::text("P12345"),
            Value::text("kinase"),
        ])
        .unwrap();
        t.insert(vec![
            Value::Int(2),
            Value::text("P67890"),
            Value::text("phosphatase"),
        ])
        .unwrap();
        t
    }

    #[test]
    fn insert_checks_arity() {
        let mut t = bioentry();
        let err = t.insert(vec![Value::Int(3)]).unwrap_err();
        assert!(matches!(err, RelError::SchemaMismatch(_)));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn insert_checks_types() {
        let schema = TableSchema::of(vec![ColumnDef::int("id")]);
        let mut t = Table::new("t", schema);
        assert!(t.insert(vec![Value::text("not a number")]).is_err());
        assert!(t.insert(vec![Value::Int(1)]).is_ok());
    }

    #[test]
    fn not_null_enforced() {
        let schema = TableSchema::of(vec![ColumnDef::not_null("id", DataType::Integer)]);
        let mut t = Table::new("t", schema);
        let err = t.insert(vec![Value::Null]).unwrap_err();
        assert!(matches!(err, RelError::ConstraintViolation(_)));
    }

    #[test]
    fn float_column_accepts_int() {
        let schema = TableSchema::of(vec![ColumnDef::float("score")]);
        let mut t = Table::new("t", schema);
        assert!(t.insert(vec![Value::Int(3)]).is_ok());
    }

    #[test]
    fn column_values_and_distinct() {
        let t = bioentry();
        let vals = t.column_values("accession").unwrap();
        assert_eq!(vals.len(), 2);
        let distinct = t.distinct_values("accession").unwrap();
        assert!(distinct.contains(&Value::text("P12345")));
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn uniqueness_detection() {
        let mut t = bioentry();
        assert!(t.column_is_unique("accession").unwrap());
        t.insert(vec![Value::Int(3), Value::text("P12345"), Value::Null])
            .unwrap();
        assert!(!t.column_is_unique("accession").unwrap());
    }

    #[test]
    fn uniqueness_requires_a_non_null_value() {
        let schema = TableSchema::of(vec![ColumnDef::text("maybe")]);
        let mut t = Table::new("t", schema);
        t.insert(vec![Value::Null]).unwrap();
        assert!(!t.column_is_unique("maybe").unwrap());
    }

    #[test]
    fn nulls_do_not_break_uniqueness() {
        let schema = TableSchema::of(vec![ColumnDef::text("acc")]);
        let mut t = Table::new("t", schema);
        t.insert(vec![Value::Null]).unwrap();
        t.insert(vec![Value::Null]).unwrap();
        t.insert(vec![Value::text("X1")]).unwrap();
        assert!(t.column_is_unique("acc").unwrap());
    }

    #[test]
    fn find_first_and_cell() {
        let t = bioentry();
        let idx = t.find_first("accession", &Value::text("P67890")).unwrap();
        assert_eq!(idx, Some(1));
        assert_eq!(
            t.cell(1, "description").unwrap(),
            &Value::text("phosphatase")
        );
        assert!(t.cell(9, "description").is_err());
        assert!(t.find_first("nope", &Value::Null).is_err());
    }

    #[test]
    fn add_column_backfills_null() {
        let mut t = bioentry();
        let idx = t.add_column(ColumnDef::text("taxon")).unwrap();
        assert_eq!(idx, 3);
        assert_eq!(t.row(0).unwrap()[3], Value::Null);
        assert_eq!(t.schema().arity(), 4);
    }

    #[test]
    fn with_capacity_and_reserve_do_not_change_contents() {
        let schema = TableSchema::of(vec![ColumnDef::int("id")]);
        let mut t = Table::with_capacity("t", schema, 16);
        assert_eq!(t.row_count(), 0);
        t.insert(vec![Value::Int(1)]).unwrap();
        t.reserve(100);
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn insert_all_counts_rows() {
        let mut t = bioentry().empty_like();
        let n = t
            .insert_all(vec![
                vec![Value::Int(1), Value::text("A1"), Value::Null],
                vec![Value::Int(2), Value::text("A2"), Value::Null],
            ])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.row_count(), 2);
    }
}
