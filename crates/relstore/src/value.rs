//! Dynamic values with a total order.

use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically typed value stored in a table cell.
///
/// `Value` implements a *total* order (`Null` sorts first, then booleans,
/// integers/floats by numeric value, then text lexicographically) so that it
/// can be used directly as a sort key and inside `BTreeMap`s by the executor
/// and the statistics collector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL / missing value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalized to `Null` on construction via
    /// [`Value::float`].
    Float(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// Construct a float value, normalizing NaN to `Null` so that the total
    /// order stays sound.
    pub fn float(v: f64) -> Value {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Float(v)
        }
    }

    /// Construct a text value.
    pub fn text(v: impl Into<String>) -> Value {
        Value::Text(v.into())
    }

    /// The data type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Boolean),
            Value::Int(_) => Some(DataType::Integer),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow the text content if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Integer content, widening booleans, if applicable.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Numeric content as f64 (ints widen), if applicable.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean content, if applicable.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render the value the way the importers and the accession detector see
    /// it: NULL becomes the empty string, everything else its display form.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            other => other.to_string(),
        }
    }

    /// Parse a raw string into the most specific value: empty → Null,
    /// integer-looking → Int, float-looking → Float, `true`/`false` → Bool,
    /// otherwise Text. This is the inference rule used by the generic parsers.
    pub fn infer(raw: &str) -> Value {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Value::Null;
        }
        if trimmed.eq_ignore_ascii_case("true") {
            return Value::Bool(true);
        }
        if trimmed.eq_ignore_ascii_case("false") {
            return Value::Bool(false);
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            // Preserve leading zeros as text: "007" is an identifier, not 7.
            if trimmed == i.to_string() {
                return Value::Int(i);
            }
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            // Require a decimal point or exponent so accession-like strings
            // such as "1e10X" never land here by accident.
            if trimmed.contains('.') || trimmed.contains('e') || trimmed.contains('E') {
                return Value::float(f);
            }
        }
        Value::Text(trimmed.to_string())
    }

    /// Whether [`Value::render`] of this value equals `target`, without
    /// allocating the rendered `String` for the dominant text and NULL cases.
    /// Probe loops (accession resolution, index lookups) call this once per
    /// row; the allocation-free fast paths are what make those scans cheap.
    pub fn renders_as(&self, target: &str) -> bool {
        match self {
            Value::Null => target.is_empty(),
            Value::Text(s) => s == target,
            other => other.render() == target,
        }
    }

    /// A coarse equality used for value-set comparisons in foreign-key and
    /// cross-reference discovery: values compare by their rendered text so
    /// that `Int(7)` in one parser's output links to `Text("7")` in another's.
    pub fn loose_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self == other || self.render() == other.render()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => f.write_str(s),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Int(_) | Float(_), Text(_)) => Ordering::Less,
            (Text(_), Int(_) | Float(_)) => Ordering::Greater,
            (Text(a), Text(b)) => a.cmp(b),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that compare equal must hash equal; hash the f64 bits
            // of the numeric value for both.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn nan_is_normalized_to_null() {
        assert!(Value::float(f64::NAN).is_null());
        assert_eq!(Value::float(1.5), Value::Float(1.5));
    }

    #[test]
    fn infer_recognizes_types() {
        assert_eq!(Value::infer("42"), Value::Int(42));
        assert_eq!(Value::infer("-7"), Value::Int(-7));
        assert_eq!(Value::infer("3.25"), Value::Float(3.25));
        assert_eq!(Value::infer("true"), Value::Bool(true));
        assert_eq!(Value::infer("False"), Value::Bool(false));
        assert_eq!(Value::infer(""), Value::Null);
        assert_eq!(Value::infer("   "), Value::Null);
        assert_eq!(Value::infer("P12345"), Value::text("P12345"));
    }

    #[test]
    fn infer_keeps_leading_zero_identifiers_as_text() {
        assert_eq!(Value::infer("007"), Value::text("007"));
        assert_eq!(Value::infer("0"), Value::Int(0));
    }

    #[test]
    fn int_and_float_compare_numerically() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn equal_int_float_hash_equal() {
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
    }

    #[test]
    fn null_sorts_first_text_last() {
        let mut vals = [
            Value::text("abc"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals.last().unwrap(), &Value::text("abc"));
    }

    #[test]
    fn loose_eq_bridges_representations() {
        assert!(Value::Int(7).loose_eq(&Value::text("7")));
        assert!(!Value::Null.loose_eq(&Value::Null));
        assert!(Value::text("P12345").loose_eq(&Value::text("P12345")));
        assert!(!Value::text("P12345").loose_eq(&Value::text("Q12345")));
    }

    #[test]
    fn render_null_is_empty() {
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Int(5).render(), "5");
        assert_eq!(Value::text("x").render(), "x");
    }

    #[test]
    fn renders_as_matches_render_equality() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::text("P12345"),
        ] {
            assert!(v.renders_as(&v.render()));
            assert!(!v.renders_as("no such rendering"));
        }
        assert!(Value::Null.renders_as(""));
        assert!(!Value::text("7").renders_as(""));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
    }

    #[test]
    fn conversions_from_rust_types() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::text("s"));
        assert_eq!(Value::from(String::from("s")), Value::text("s"));
    }
}
