//! Rule-based plan optimization.
//!
//! [`optimize`] rewrites a [`LogicalPlan`] into an observationally equivalent
//! plan that the streaming executor ([`crate::stream`]) runs faster. The
//! optimizer is best-effort and infallible: whenever a rule cannot prove a
//! rewrite safe (an unknown table, an ambiguous column, a literal whose
//! rendered form is not faithful to `=`), it leaves the node unchanged and
//! the executor reports any real error. Rules are applied bottom-up and the
//! whole pass is iterated to a fixpoint (bounded), so rewrites compose — a
//! predicate pushed below a `Sort` is index-rewritten on the next pass.
//!
//! The rules:
//!
//! 1. **Filter merging** — `Filter(p₂, Filter(p₁, x))` becomes
//!    `Filter(p₁ AND p₂, x)`, giving the later rules one conjunction to work
//!    with.
//! 2. **Predicate pushdown** — filters move below `Sort` (sorting commutes
//!    with filtering), below `Project` when every referenced column is a
//!    plain pass-through column (references are renamed to the input
//!    columns), and into `Join` inputs conjunct by conjunct: a conjunct whose
//!    columns all resolve in exactly one input moves to that input (for a
//!    left-outer join only the left input is eligible — pushing right would
//!    drop the NULL-padded rows).
//! 3. **Limit/offset pushdown** — `Limit`/`Offset` move below `Project` so
//!    the projection evaluates only the rows that survive pagination;
//!    adjacent `Limit`s collapse to the smaller one, adjacent `Offset`s sum.
//! 4. **Projection pruning** — `Project(Project(x))` collapses by
//!    substituting the inner expressions into the outer ones, and an identity
//!    projection (plain columns, same names, same order as its input) is
//!    removed entirely.
//! 5. **Index-scan rewriting** — an equality conjunct `column = literal`
//!    directly above a base `Scan` becomes an [`LogicalPlan::IndexScan`]
//!    backed by the catalog's cached [`crate::index::HashIndex`], with the
//!    remaining conjuncts left as a residual filter. Because the hash index
//!    keys on *rendered* values, the rewrite only fires when rendered
//!    equality is faithful to `=`: text literals (on any column), or integer
//!    literals on INTEGER columns. Among several eligible conjuncts the one
//!    with the fewest estimated matches (per cached [`crate::stats::ColumnStats`]) wins.
//! 6. **Join build-side selection** — the executor builds the hash table on
//!    the *right* input of a join; for inner joins whose left input is
//!    estimated (via table row counts and [`crate::stats::ColumnStats`] selectivities) to
//!    be clearly smaller, the inputs are swapped and a projection restores
//!    the original column order.
//! 7. **Proven-empty pruning** — the static analyzer's satisfiability engine
//!    ([`crate::analyze`]) runs over each filter's conjunction: a proven
//!    contradiction (`a = 1 AND a = 2`, `x > 10 AND x < 5`) collapses the
//!    subtree to [`LogicalPlan::Empty`] and constant-true conjuncts are
//!    dropped. Emptiness then propagates upward (an inner join with an empty
//!    input is empty, grouped aggregation over nothing yields no rows, ...),
//!    skipping scans and join builds entirely. Pruning only fires when it
//!    provably cannot mask a runtime error: the predicate must be statically
//!    well typed and every column the executors resolve up front must
//!    resolve.
//!
//! The equivalence contract — `execute(optimize(plan))` returns the same rows
//! as `execute(plan)` — is property-tested in `tests/props.rs` against
//! randomly generated plans and data (up to row order for plans containing a
//! swapped join; everything else preserves order exactly).

use crate::analyze::{conjunction_satisfiability, expr_is_well_typed, Satisfiability};
use crate::catalog::Database;
use crate::error::RelResult;
use crate::exec::aggregate_schema;
use crate::expr::{BinaryOp, Expr};
use crate::plan::{AggFunc, JoinType, LogicalPlan};
use crate::schema::{ColumnDef, TableSchema};
use crate::table::Table;
use crate::types::DataType;
use crate::value::Value;
use std::collections::HashMap;

/// Maximum number of whole-plan rewrite passes; each pass is a bottom-up
/// traversal, so this bounds how far a rewrite can cascade.
const MAX_PASSES: usize = 5;

/// Estimated build-side rows below which swapping join inputs is not worth
/// the restoring projection.
const SWAP_MIN_ROWS: f64 = 64.0;

/// Optimize a plan for execution against `db`. Infallible: nodes that cannot
/// be safely rewritten are returned unchanged.
pub fn optimize(db: &Database, plan: &LogicalPlan) -> LogicalPlan {
    let mut current = plan.clone();
    for _ in 0..MAX_PASSES {
        let next = rewrite(db, &current);
        if next == current {
            break;
        }
        current = next;
    }
    current
}

/// One bottom-up rewrite pass.
fn rewrite(db: &Database, plan: &LogicalPlan) -> LogicalPlan {
    let node = match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::IndexScan { .. } | LogicalPlan::Empty { .. } => {
            plan.clone()
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(rewrite(db, input)),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(rewrite(db, input)),
            exprs: exprs.clone(),
        },
        LogicalPlan::Join {
            left,
            right,
            left_col,
            right_col,
            join_type,
            left_qualifier,
            right_qualifier,
        } => LogicalPlan::Join {
            left: Box::new(rewrite(db, left)),
            right: Box::new(rewrite(db, right)),
            left_col: left_col.clone(),
            right_col: right_col.clone(),
            join_type: *join_type,
            left_qualifier: left_qualifier.clone(),
            right_qualifier: right_qualifier.clone(),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite(db, input)),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite(db, input)),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, limit } => LogicalPlan::Limit {
            input: Box::new(rewrite(db, input)),
            limit: *limit,
        },
        LogicalPlan::Offset { input, offset } => LogicalPlan::Offset {
            input: Box::new(rewrite(db, input)),
            offset: *offset,
        },
    };
    // Rule 7 (propagation): operators over a proven-empty input are
    // themselves empty where that is provably equivalent.
    if let Some(empty) = propagate_empty(db, &node) {
        return empty;
    }
    match node {
        LogicalPlan::Filter { .. } => rewrite_filter(db, node),
        LogicalPlan::Limit { .. } | LogicalPlan::Offset { .. } => rewrite_pagination(node),
        LogicalPlan::Project { .. } => rewrite_project(db, node),
        LogicalPlan::Join { .. } => rewrite_join(db, node),
        other => other,
    }
}

/// Rule 7 (propagation): rewrite an operator whose input was proven empty.
/// Every case is guarded so pruning never changes observable behaviour: the
/// executors resolve sort keys, join keys and aggregate columns *before*
/// reading any rows, so those must resolve for the pruned plan to be
/// equivalent; a left-outer join with an empty right input keeps its left
/// rows, and a global (ungrouped) aggregate over nothing yields one row —
/// neither is pruned.
fn propagate_empty(db: &Database, node: &LogicalPlan) -> Option<LogicalPlan> {
    fn empty_schema(plan: &LogicalPlan) -> Option<&TableSchema> {
        match plan {
            LogicalPlan::Empty { schema } => Some(schema),
            _ => None,
        }
    }
    match node {
        // Pass-through operators over an empty input are that input. Filter
        // predicates are evaluated per row, so an empty input can never
        // surface a predicate error anyway.
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Offset { input, .. }
            if empty_schema(input).is_some() =>
        {
            Some((**input).clone())
        }
        LogicalPlan::Sort { input, keys } => {
            let schema = empty_schema(input)?;
            if keys.iter().all(|k| schema.index_of(&k.column).is_some()) {
                Some((**input).clone())
            } else {
                None
            }
        }
        LogicalPlan::Project { input, .. } if empty_schema(input).is_some() => {
            // schema_of fails on duplicate output names, which the executors
            // also reject — so a failure simply leaves the node unpruned.
            let schema = schema_of(db, node).ok()?;
            Some(LogicalPlan::Empty { schema })
        }
        LogicalPlan::Join {
            left,
            right,
            left_col,
            right_col,
            join_type,
            ..
        } => {
            let prunable = empty_schema(left).is_some()
                || (*join_type == JoinType::Inner && empty_schema(right).is_some());
            if !prunable {
                return None;
            }
            let ls = schema_of(db, left).ok()?;
            let rs = schema_of(db, right).ok()?;
            if ls.index_of(left_col).is_none() || rs.index_of(right_col).is_none() {
                return None;
            }
            let schema = schema_of(db, node).ok()?;
            Some(LogicalPlan::Empty { schema })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let schema = empty_schema(input)?;
            if group_by.is_empty() {
                return None;
            }
            let resolvable = group_by.iter().all(|c| schema.index_of(c).is_some())
                && aggregates.iter().all(|a| match (&a.column, a.func) {
                    (Some(c), _) => schema.index_of(c).is_some(),
                    (None, AggFunc::Count) => true,
                    (None, _) => false,
                });
            if !resolvable {
                return None;
            }
            let schema = schema_of(db, node).ok()?;
            Some(LogicalPlan::Empty { schema })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Rule 1 + 2 + 5: filters
// ---------------------------------------------------------------------------

fn rewrite_filter(db: &Database, node: LogicalPlan) -> LogicalPlan {
    let LogicalPlan::Filter { input, predicate } = node else {
        return node;
    };
    // Rule 7: satisfiability over the conjunction. A proven contradiction
    // collapses the subtree to an empty relation — but only when the
    // predicate is statically well typed, so pruning never masks a runtime
    // error — and proven constant-true conjuncts are dropped.
    if let Ok(schema) = schema_of(db, &input) {
        let mut conjuncts = Vec::new();
        split_conjuncts(&predicate, &mut conjuncts);
        match conjunction_satisfiability(&conjuncts) {
            Satisfiability::Contradiction(_) => {
                if expr_is_well_typed(&predicate, &schema) {
                    return LogicalPlan::Empty { schema };
                }
            }
            Satisfiability::Satisfiable { true_conjuncts } => {
                if !true_conjuncts.is_empty() {
                    let remaining: Vec<Expr> = conjuncts
                        .into_iter()
                        .enumerate()
                        .filter(|(i, _)| !true_conjuncts.contains(i))
                        .map(|(_, c)| c)
                        .collect();
                    return match conjoin(remaining) {
                        Some(p) => rewrite_filter(
                            db,
                            LogicalPlan::Filter {
                                input,
                                predicate: p,
                            },
                        ),
                        None => *input,
                    };
                }
            }
        }
    }
    match *input {
        // Rule 1: merge stacked filters into one conjunction.
        LogicalPlan::Filter {
            input: inner_input,
            predicate: inner_predicate,
        } => rewrite_filter(
            db,
            LogicalPlan::Filter {
                input: inner_input,
                predicate: inner_predicate.and(predicate),
            },
        ),
        // Rule 2: filtering commutes with sorting.
        LogicalPlan::Sort {
            input: sort_input,
            keys,
        } => LogicalPlan::Sort {
            input: Box::new(rewrite_filter(
                db,
                LogicalPlan::Filter {
                    input: sort_input,
                    predicate,
                },
            )),
            keys,
        },
        // Rule 2: push below a projection of plain columns.
        LogicalPlan::Project {
            input: project_input,
            exprs,
        } => match rename_through_project(&predicate, &exprs) {
            Some(renamed) => LogicalPlan::Project {
                input: Box::new(rewrite_filter(
                    db,
                    LogicalPlan::Filter {
                        input: project_input,
                        predicate: renamed,
                    },
                )),
                exprs,
            },
            None => LogicalPlan::Filter {
                input: Box::new(LogicalPlan::Project {
                    input: project_input,
                    exprs,
                }),
                predicate,
            },
        },
        // Rule 2: push conjuncts into the join side they reference.
        join @ LogicalPlan::Join { .. } => push_into_join(db, predicate, join),
        // Rule 5: equality conjuncts over a base scan become index scans.
        LogicalPlan::Scan { table } => rewrite_scan_filter(db, table, predicate),
        other => LogicalPlan::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

/// Split a predicate into its AND-ed conjuncts.
fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinaryOp::And,
        left,
        right,
    } = e
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

/// Rebuild a conjunction; `None` for an empty list.
fn conjoin(parts: Vec<Expr>) -> Option<Expr> {
    parts.into_iter().reduce(Expr::and)
}

/// Rewrite a predicate's column references from projection output names to
/// the projection's input columns. `None` when any referenced column is not a
/// plain pass-through column.
fn rename_through_project(predicate: &Expr, exprs: &[(Expr, String)]) -> Option<Expr> {
    let mut map: HashMap<String, String> = HashMap::new();
    for (e, name) in exprs {
        if let Expr::Column(inner) = e {
            map.insert(name.to_ascii_lowercase(), inner.clone());
        }
    }
    rename_columns(predicate, &map)
}

fn rename_columns(e: &Expr, map: &HashMap<String, String>) -> Option<Expr> {
    match e {
        Expr::Column(c) => map
            .get(&c.to_ascii_lowercase())
            .map(|inner| Expr::Column(inner.clone())),
        Expr::Literal(_) => Some(e.clone()),
        Expr::Binary { op, left, right } => Some(Expr::Binary {
            op: *op,
            left: Box::new(rename_columns(left, map)?),
            right: Box::new(rename_columns(right, map)?),
        }),
        Expr::Not(inner) => Some(Expr::Not(Box::new(rename_columns(inner, map)?))),
        Expr::IsNull(inner) => Some(Expr::IsNull(Box::new(rename_columns(inner, map)?))),
        Expr::IsNotNull(inner) => Some(Expr::IsNotNull(Box::new(rename_columns(inner, map)?))),
    }
}

/// Push the conjuncts of `predicate` into the inputs of `join` where they
/// resolve unambiguously; the rest stays above the join.
fn push_into_join(db: &Database, predicate: Expr, join: LogicalPlan) -> LogicalPlan {
    let LogicalPlan::Join {
        left,
        right,
        left_col,
        right_col,
        join_type,
        left_qualifier,
        right_qualifier,
    } = join
    else {
        unreachable!("caller matched a join");
    };
    let (Ok(left_schema), Ok(right_schema)) = (schema_of(db, &left), schema_of(db, &right)) else {
        // Unknown tables etc.: leave the filter above, the executor reports.
        return LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left,
                right,
                left_col,
                right_col,
                join_type,
                left_qualifier,
                right_qualifier,
            }),
            predicate,
        };
    };

    let mut conjuncts = Vec::new();
    split_conjuncts(&predicate, &mut conjuncts);
    let (mut to_left, mut to_right, mut keep) = (Vec::new(), Vec::new(), Vec::new());
    for conjunct in conjuncts {
        let cols = conjunct.referenced_columns();
        let on_left = cols.iter().all(|c| left_schema.index_of(c).is_some());
        let on_right = cols.iter().all(|c| right_schema.index_of(c).is_some());
        match (on_left, on_right) {
            // Columns resolving on both sides are ambiguous: keep above.
            (true, false) => to_left.push(conjunct),
            // Pushing right through a left-outer join would drop padded rows.
            (false, true) if join_type == JoinType::Inner => to_right.push(conjunct),
            _ => keep.push(conjunct),
        }
    }

    let mut new_left = *left;
    if let Some(p) = conjoin(to_left) {
        new_left = rewrite_filter(
            db,
            LogicalPlan::Filter {
                input: Box::new(new_left),
                predicate: p,
            },
        );
    }
    let mut new_right = *right;
    if let Some(p) = conjoin(to_right) {
        new_right = rewrite_filter(
            db,
            LogicalPlan::Filter {
                input: Box::new(new_right),
                predicate: p,
            },
        );
    }
    let joined = LogicalPlan::Join {
        left: Box::new(new_left),
        right: Box::new(new_right),
        left_col,
        right_col,
        join_type,
        left_qualifier,
        right_qualifier,
    };
    match conjoin(keep) {
        Some(p) => LogicalPlan::Filter {
            input: Box::new(joined),
            predicate: p,
        },
        None => joined,
    }
}

/// Rule 5: rewrite `Filter(.. AND column = literal AND .., Scan(t))` into an
/// `IndexScan` plus a residual filter. Only fires when rendered-key equality
/// is faithful to `=` (see the module docs).
fn rewrite_scan_filter(db: &Database, table: String, predicate: Expr) -> LogicalPlan {
    let keep_unchanged = |predicate: Expr| LogicalPlan::Filter {
        input: Box::new(LogicalPlan::Scan {
            table: table.clone(),
        }),
        predicate,
    };
    let Ok(t) = db.table(&table) else {
        return keep_unchanged(predicate);
    };

    let mut conjuncts = Vec::new();
    split_conjuncts(&predicate, &mut conjuncts);

    // Find the eligible equality conjunct with the fewest estimated matches.
    let mut best: Option<(usize, String, Value, f64)> = None;
    for (i, conjunct) in conjuncts.iter().enumerate() {
        let Some((column, value)) = as_column_eq_literal(conjunct) else {
            continue;
        };
        let Some(def) = t.schema().column(column) else {
            continue;
        };
        let faithful = match value {
            Value::Text(_) => true,
            Value::Int(_) => def.data_type == DataType::Integer,
            _ => false,
        };
        if !faithful {
            continue;
        }
        let estimate = db
            .column_stats(&table, &def.name)
            .map(|s| s.estimated_eq_rows())
            .unwrap_or(f64::MAX);
        if best.as_ref().is_none_or(|(_, _, _, e)| estimate < *e) {
            best = Some((i, def.name.clone(), value.clone(), estimate));
        }
    }
    let Some((chosen, column, value, _)) = best else {
        return keep_unchanged(predicate);
    };

    conjuncts.remove(chosen);
    let scan = LogicalPlan::IndexScan {
        table,
        column,
        value,
    };
    match conjoin(conjuncts) {
        Some(residual) => LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: residual,
        },
        None => scan,
    }
}

/// Match `column = literal` (either orientation), excluding NULL literals.
fn as_column_eq_literal(e: &Expr) -> Option<(&str, &Value)> {
    let Expr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = e
    else {
        return None;
    };
    let (column, value) = match (&**left, &**right) {
        (Expr::Column(c), Expr::Literal(v)) => (c.as_str(), v),
        (Expr::Literal(v), Expr::Column(c)) => (c.as_str(), v),
        _ => return None,
    };
    if value.is_null() {
        return None;
    }
    Some((column, value))
}

// ---------------------------------------------------------------------------
// Rule 3: limit/offset pushdown
// ---------------------------------------------------------------------------

fn rewrite_pagination(node: LogicalPlan) -> LogicalPlan {
    match node {
        LogicalPlan::Limit { input, limit } => match *input {
            // Adjacent limits collapse to the smaller.
            LogicalPlan::Limit {
                input: inner,
                limit: inner_limit,
            } => rewrite_pagination(LogicalPlan::Limit {
                input: inner,
                limit: limit.min(inner_limit),
            }),
            // A projection computes per-row; paginate first.
            LogicalPlan::Project {
                input: project_input,
                exprs,
            } => LogicalPlan::Project {
                input: Box::new(rewrite_pagination(LogicalPlan::Limit {
                    input: project_input,
                    limit,
                })),
                exprs,
            },
            other => LogicalPlan::Limit {
                input: Box::new(other),
                limit,
            },
        },
        LogicalPlan::Offset { input, offset } => match *input {
            // Adjacent offsets sum.
            LogicalPlan::Offset {
                input: inner,
                offset: inner_offset,
            } => rewrite_pagination(LogicalPlan::Offset {
                input: inner,
                offset: offset.saturating_add(inner_offset),
            }),
            LogicalPlan::Project {
                input: project_input,
                exprs,
            } => LogicalPlan::Project {
                input: Box::new(rewrite_pagination(LogicalPlan::Offset {
                    input: project_input,
                    offset,
                })),
                exprs,
            },
            other => LogicalPlan::Offset {
                input: Box::new(other),
                offset,
            },
        },
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Rule 4: projection pruning
// ---------------------------------------------------------------------------

fn rewrite_project(db: &Database, node: LogicalPlan) -> LogicalPlan {
    let LogicalPlan::Project { input, exprs } = node else {
        return node;
    };
    // Collapse Project(Project) by substituting inner expressions.
    if let LogicalPlan::Project {
        input: inner_input,
        exprs: inner_exprs,
    } = &*input
    {
        let mut map: HashMap<String, Expr> = HashMap::new();
        for (e, name) in inner_exprs {
            map.insert(name.to_ascii_lowercase(), e.clone());
        }
        let substituted: Option<Vec<(Expr, String)>> = exprs
            .iter()
            .map(|(e, name)| substitute_columns(e, &map).map(|s| (s, name.clone())))
            .collect();
        if let Some(exprs) = substituted {
            return rewrite_project(
                db,
                LogicalPlan::Project {
                    input: inner_input.clone(),
                    exprs,
                },
            );
        }
    }
    // Remove identity projections.
    if let Ok(in_schema) = schema_of(db, &input) {
        let identity = exprs.len() == in_schema.arity()
            && exprs
                .iter()
                .zip(in_schema.columns())
                .all(|((e, name), col)| {
                    name == &col.name
                        && matches!(e, Expr::Column(c) if c.eq_ignore_ascii_case(&col.name))
                });
        if identity {
            return *input;
        }
    }
    LogicalPlan::Project { input, exprs }
}

fn substitute_columns(e: &Expr, map: &HashMap<String, Expr>) -> Option<Expr> {
    match e {
        Expr::Column(c) => map.get(&c.to_ascii_lowercase()).cloned(),
        Expr::Literal(_) => Some(e.clone()),
        Expr::Binary { op, left, right } => Some(Expr::Binary {
            op: *op,
            left: Box::new(substitute_columns(left, map)?),
            right: Box::new(substitute_columns(right, map)?),
        }),
        Expr::Not(inner) => Some(Expr::Not(Box::new(substitute_columns(inner, map)?))),
        Expr::IsNull(inner) => Some(Expr::IsNull(Box::new(substitute_columns(inner, map)?))),
        Expr::IsNotNull(inner) => Some(Expr::IsNotNull(Box::new(substitute_columns(inner, map)?))),
    }
}

// ---------------------------------------------------------------------------
// Rule 6: join build-side selection
// ---------------------------------------------------------------------------

fn rewrite_join(db: &Database, node: LogicalPlan) -> LogicalPlan {
    let LogicalPlan::Join {
        left,
        right,
        left_col,
        right_col,
        join_type,
        left_qualifier,
        right_qualifier,
    } = &node
    else {
        return node;
    };
    if *join_type != JoinType::Inner {
        return node;
    }
    let est_left = estimate_rows(db, left);
    let est_right = estimate_rows(db, right);
    // The executor builds its hash table on the right input: swap when the
    // left is clearly the smaller build side (1.5x hysteresis so repeated
    // passes never flip back and forth).
    if est_right < SWAP_MIN_ROWS || est_left * 1.5 >= est_right {
        return node;
    }
    let Ok(original_schema) = schema_of(db, &node) else {
        return node;
    };
    let swapped = LogicalPlan::Join {
        left: right.clone(),
        right: left.clone(),
        left_col: right_col.clone(),
        right_col: left_col.clone(),
        join_type: JoinType::Inner,
        left_qualifier: right_qualifier.clone(),
        right_qualifier: left_qualifier.clone(),
    };
    // Clash-driven qualification is symmetric, so the swapped join exposes
    // the same column names; a projection restores the original order.
    let exprs: Vec<(Expr, String)> = original_schema
        .columns()
        .iter()
        .map(|c| (Expr::col(c.name.clone()), c.name.clone()))
        .collect();
    LogicalPlan::Project {
        input: Box::new(swapped),
        exprs,
    }
}

// ---------------------------------------------------------------------------
// Schema derivation and cardinality estimation
// ---------------------------------------------------------------------------

/// Derive the output schema of a plan without executing it.
pub fn schema_of(db: &Database, plan: &LogicalPlan) -> RelResult<TableSchema> {
    match plan {
        LogicalPlan::Scan { table } | LogicalPlan::IndexScan { table, .. } => {
            Ok(db.table(table)?.schema().clone())
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Offset { input, .. } => schema_of(db, input),
        LogicalPlan::Project { input, exprs } => {
            let in_schema = schema_of(db, input)?;
            let cols = exprs
                .iter()
                .map(|(e, name)| ColumnDef::new(name.clone(), e.result_type(&in_schema)))
                .collect();
            TableSchema::new(cols)
        }
        LogicalPlan::Join {
            left,
            right,
            left_qualifier,
            right_qualifier,
            ..
        } => {
            let l = schema_of(db, left)?;
            let r = schema_of(db, right)?;
            Ok(l.join(&r, left_qualifier, right_qualifier))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let in_schema = schema_of(db, input)?;
            aggregate_schema(&in_schema, group_by, aggregates)
        }
        LogicalPlan::Empty { schema } => Ok(schema.clone()),
    }
}

/// Rough output-cardinality estimate, used to pick join build sides. Base
/// tables count rows, equality predicates use the cached per-column
/// statistics, everything else applies fixed selectivities — deliberately
/// coarse, only relative order matters.
pub fn estimate_rows(db: &Database, plan: &LogicalPlan) -> f64 {
    match plan {
        LogicalPlan::Scan { table } => db
            .table(table)
            .map(|t| Table::row_count(t) as f64)
            .unwrap_or(1000.0),
        LogicalPlan::IndexScan { table, column, .. } => db
            .column_stats(table, column)
            .map(|s| s.estimated_eq_rows())
            .unwrap_or(1.0),
        LogicalPlan::Filter { input, predicate } => {
            estimate_rows(db, input) * selectivity(db, input, predicate)
        }
        LogicalPlan::Project { input, .. } | LogicalPlan::Sort { input, .. } => {
            estimate_rows(db, input)
        }
        LogicalPlan::Join { left, right, .. } => {
            estimate_rows(db, left).max(estimate_rows(db, right))
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            if group_by.is_empty() {
                1.0
            } else {
                estimate_rows(db, input)
            }
        }
        LogicalPlan::Limit { input, limit } => estimate_rows(db, input).min(*limit as f64),
        LogicalPlan::Offset { input, offset } => {
            (estimate_rows(db, input) - *offset as f64).max(0.0)
        }
        LogicalPlan::Empty { .. } => 0.0,
    }
}

/// Fraction of input rows a predicate is assumed to keep.
fn selectivity(db: &Database, input: &LogicalPlan, predicate: &Expr) -> f64 {
    let mut conjuncts = Vec::new();
    split_conjuncts(predicate, &mut conjuncts);
    let mut keep = 1.0f64;
    for conjunct in &conjuncts {
        let s = match conjunct {
            Expr::Binary {
                op: BinaryOp::Eq, ..
            } => match (as_column_eq_literal(conjunct), input) {
                (Some((column, _)), LogicalPlan::Scan { table }) => {
                    match (db.column_stats(table, column), db.table(table)) {
                        (Ok(stats), Ok(t)) if t.row_count() > 0 => {
                            (stats.estimated_eq_rows() / t.row_count() as f64).clamp(0.0, 1.0)
                        }
                        _ => 0.1,
                    }
                }
                _ => 0.1,
            },
            Expr::Binary {
                op: BinaryOp::Like, ..
            } => 0.25,
            Expr::IsNull(_) => 0.1,
            _ => 0.33,
        };
        keep *= s;
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, execute_naive};
    use crate::plan::SortKey;

    fn db() -> Database {
        let mut db = Database::new("src");
        db.create_table(
            "bioentry",
            TableSchema::of(vec![
                ColumnDef::int("bioentry_id"),
                ColumnDef::text("accession"),
                ColumnDef::text("name"),
            ]),
        )
        .unwrap();
        db.create_table(
            "dbref",
            TableSchema::of(vec![
                ColumnDef::int("dbref_id"),
                ColumnDef::int("bioentry_id"),
                ColumnDef::text("target"),
            ]),
        )
        .unwrap();
        for i in 0..200i64 {
            db.insert(
                "bioentry",
                vec![
                    Value::Int(i),
                    Value::text(format!("P{i:05}")),
                    Value::text(format!("protein {i}")),
                ],
            )
            .unwrap();
        }
        for i in 0..20i64 {
            db.insert(
                "dbref",
                vec![
                    Value::Int(1000 + i),
                    Value::Int(i * 7),
                    Value::text(format!("PDB:{i}")),
                ],
            )
            .unwrap();
        }
        db
    }

    fn assert_same_rows(db: &Database, plan: &LogicalPlan) {
        let optimized = optimize(db, plan);
        let a = execute_naive(db, plan).unwrap();
        let b = execute(db, &optimized).unwrap();
        assert_eq!(
            a.schema().column_names(),
            b.schema().column_names(),
            "schema mismatch for optimized plan:\n{}",
            optimized.explain()
        );
        let mut rows_a = a.rows().to_vec();
        let mut rows_b = b.rows().to_vec();
        rows_a.sort();
        rows_b.sort();
        assert_eq!(rows_a, rows_b, "row mismatch:\n{}", optimized.explain());
    }

    #[test]
    fn equality_filter_over_scan_becomes_index_scan() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry")
            .filter(Expr::col("accession").eq(Expr::lit(Value::text("P00007"))));
        let optimized = optimize(&db, &plan);
        assert_eq!(
            optimized.explain(),
            "IndexScan bioentry.accession = 'P00007'\n"
        );
        assert_same_rows(&db, &plan);
    }

    #[test]
    fn residual_conjuncts_stay_above_the_index_scan() {
        let db = db();
        let predicate = Expr::col("accession")
            .eq(Expr::lit(Value::text("P00007")))
            .and(Expr::col("name").like("protein%"));
        let plan = LogicalPlan::scan("bioentry").filter(predicate);
        let optimized = optimize(&db, &plan);
        assert_eq!(
            optimized.explain(),
            "Filter (name LIKE 'protein%')\n  IndexScan bioentry.accession = 'P00007'\n"
        );
        assert_same_rows(&db, &plan);
    }

    #[test]
    fn int_equality_on_integer_column_is_eligible_but_float_is_not() {
        let db = db();
        let int_plan =
            LogicalPlan::scan("bioentry").filter(Expr::col("bioentry_id").eq(Expr::lit(7i64)));
        assert!(optimize(&db, &int_plan).explain().starts_with("IndexScan"));
        let float_plan =
            LogicalPlan::scan("bioentry").filter(Expr::col("bioentry_id").eq(Expr::lit(7.0f64)));
        assert!(optimize(&db, &float_plan).explain().starts_with("Filter"));
        assert_same_rows(&db, &int_plan);
        assert_same_rows(&db, &float_plan);
    }

    #[test]
    fn predicate_pushes_through_sort_and_project() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry")
            .project_columns(&["accession", "name"])
            .sort(vec![SortKey {
                column: "accession".into(),
                ascending: true,
            }])
            .filter(Expr::col("accession").eq(Expr::lit(Value::text("P00003"))));
        let optimized = optimize(&db, &plan);
        assert_eq!(
            optimized.explain(),
            "Sort accession ASC\n  Project accession, name\n    IndexScan bioentry.accession = 'P00003'\n"
        );
        assert_same_rows(&db, &plan);
    }

    #[test]
    fn predicate_pushes_into_join_sides() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry")
            .join(
                LogicalPlan::scan("dbref"),
                "bioentry_id",
                "bioentry_id",
                "bioentry",
                "dbref",
            )
            .filter(
                Expr::col("accession")
                    .eq(Expr::lit(Value::text("P00007")))
                    .and(Expr::col("target").like("PDB%")),
            );
        let optimized = optimize(&db, &plan);
        let explain = optimized.explain();
        assert!(
            explain.contains("IndexScan bioentry.accession = 'P00007'"),
            "left conjunct not pushed:\n{explain}"
        );
        assert!(
            explain.contains("Filter (target LIKE 'PDB%')"),
            "right conjunct not pushed:\n{explain}"
        );
        assert_same_rows(&db, &plan);
    }

    #[test]
    fn left_outer_join_only_pushes_left_conjuncts() {
        let db = db();
        let join = LogicalPlan::Join {
            left: Box::new(LogicalPlan::scan("bioentry")),
            right: Box::new(LogicalPlan::scan("dbref")),
            left_col: "bioentry_id".into(),
            right_col: "bioentry_id".into(),
            join_type: JoinType::LeftOuter,
            left_qualifier: "bioentry".into(),
            right_qualifier: "dbref".into(),
        };
        let plan = join.filter(
            Expr::col("accession")
                .eq(Expr::lit(Value::text("P00007")))
                .and(Expr::IsNull(Box::new(Expr::col("target")))),
        );
        let optimized = optimize(&db, &plan);
        let explain = optimized.explain();
        // The right-side conjunct must stay above the join.
        assert!(
            explain.starts_with("Filter (target IS NULL)"),
            "unexpected plan:\n{explain}"
        );
        assert_same_rows(&db, &plan);
    }

    #[test]
    fn limit_pushes_below_project_and_merges() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry")
            .project_columns(&["accession"])
            .limit(10)
            .limit(5);
        let optimized = optimize(&db, &plan);
        assert_eq!(
            optimized.explain(),
            "Project accession\n  Limit 5\n    Scan bioentry\n"
        );
        assert_same_rows(&db, &plan);
    }

    #[test]
    fn offsets_merge_and_push_below_project() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry")
            .project_columns(&["accession"])
            .offset(3)
            .offset(4);
        let optimized = optimize(&db, &plan);
        assert_eq!(
            optimized.explain(),
            "Project accession\n  Offset 7\n    Scan bioentry\n"
        );
        assert_same_rows(&db, &plan);
    }

    #[test]
    fn identity_projection_is_removed_and_projections_collapse() {
        let db = db();
        let identity =
            LogicalPlan::scan("bioentry").project_columns(&["bioentry_id", "accession", "name"]);
        assert_eq!(optimize(&db, &identity).explain(), "Scan bioentry\n");
        let stacked = LogicalPlan::scan("bioentry")
            .project_columns(&["accession", "name"])
            .project_columns(&["accession"]);
        assert_eq!(
            optimize(&db, &stacked).explain(),
            "Project accession\n  Scan bioentry\n"
        );
        assert_same_rows(&db, &identity);
        assert_same_rows(&db, &stacked);
    }

    #[test]
    fn join_build_side_prefers_the_smaller_input() {
        let db = db();
        // dbref (20 rows) joined as probe side with bioentry (200 rows) as
        // build: the optimizer swaps so the small table is built.
        let plan = LogicalPlan::scan("dbref").join(
            LogicalPlan::scan("bioentry"),
            "bioentry_id",
            "bioentry_id",
            "dbref",
            "bioentry",
        );
        let optimized = optimize(&db, &plan);
        let explain = optimized.explain();
        assert!(
            explain.contains("Scan bioentry\n  Scan dbref")
                || explain.contains("Scan bioentry\n    Scan dbref"),
            "expected dbref on the build side:\n{explain}"
        );
        assert!(explain.starts_with("Project"), "{explain}");
        assert_same_rows(&db, &plan);
    }

    #[test]
    fn estimates_follow_operators() {
        let db = db();
        assert_eq!(estimate_rows(&db, &LogicalPlan::scan("bioentry")), 200.0);
        let filtered = LogicalPlan::scan("bioentry")
            .filter(Expr::col("accession").eq(Expr::lit(Value::text("P00001"))));
        assert!(estimate_rows(&db, &filtered) <= 1.0);
        let limited = LogicalPlan::scan("bioentry").limit(5);
        assert_eq!(estimate_rows(&db, &limited), 5.0);
    }

    #[test]
    fn contradictory_filter_collapses_to_empty() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry").filter(
            Expr::col("accession")
                .eq(Expr::lit(Value::text("P00001")))
                .and(Expr::col("accession").eq(Expr::lit(Value::text("P00002")))),
        );
        let optimized = optimize(&db, &plan);
        assert_eq!(optimized.explain(), "Empty\n");
        assert_same_rows(&db, &plan);
        // The pruned plan keeps the schema of the subtree it replaced.
        let result = execute(&db, &optimized).unwrap();
        assert_eq!(
            result.schema().column_names(),
            vec!["bioentry_id", "accession", "name"]
        );
        assert_eq!(result.row_count(), 0);
    }

    #[test]
    fn emptiness_propagates_through_joins_projections_and_grouped_aggregates() {
        let db = db();
        let contradiction = Expr::col("bioentry_id")
            .eq(Expr::lit(1i64))
            .and(Expr::col("bioentry_id").eq(Expr::lit(2i64)));
        let plan = LogicalPlan::scan("bioentry")
            .filter(contradiction.clone())
            .join(
                LogicalPlan::scan("dbref"),
                "bioentry_id",
                "bioentry_id",
                "bioentry",
                "dbref",
            )
            .project_columns(&["accession", "target"])
            .aggregate(
                vec!["target".to_string()],
                vec![crate::plan::Aggregate::count_star("n")],
            );
        let optimized = optimize(&db, &plan);
        assert_eq!(optimized.explain(), "Empty\n");
        assert_same_rows(&db, &plan);
    }

    #[test]
    fn empty_pruning_respects_outer_joins_and_global_aggregates() {
        let db = db();
        let contradiction = Expr::col("bioentry_id")
            .eq(Expr::lit(1i64))
            .and(Expr::col("bioentry_id").eq(Expr::lit(2i64)));
        // A left-outer join with a proven-empty RIGHT input keeps its left
        // rows and must not be pruned.
        let outer = LogicalPlan::Join {
            left: Box::new(LogicalPlan::scan("bioentry")),
            right: Box::new(LogicalPlan::scan("dbref").filter(contradiction.clone())),
            left_col: "bioentry_id".into(),
            right_col: "bioentry_id".into(),
            join_type: JoinType::LeftOuter,
            left_qualifier: "bioentry".into(),
            right_qualifier: "dbref".into(),
        };
        let optimized = optimize(&db, &outer);
        assert!(
            !matches!(optimized, LogicalPlan::Empty { .. }),
            "{}",
            optimized.explain()
        );
        assert_same_rows(&db, &outer);
        // A global aggregate over a proven-empty input still yields one row.
        let global = LogicalPlan::scan("bioentry")
            .filter(contradiction)
            .aggregate(vec![], vec![crate::plan::Aggregate::count_star("n")]);
        let optimized = optimize(&db, &global);
        assert!(
            !matches!(optimized, LogicalPlan::Empty { .. }),
            "{}",
            optimized.explain()
        );
        let result = execute(&db, &optimized).unwrap();
        assert_eq!(result.row_count(), 1);
        assert_eq!(result.cell(0, "n").unwrap(), &Value::Int(0));
        assert_same_rows(&db, &global);
    }

    #[test]
    fn tautological_conjuncts_are_dropped() {
        let db = db();
        let tautology = Expr::lit(1i64).eq(Expr::lit(1i64));
        let plan = LogicalPlan::scan("bioentry").filter(
            tautology
                .clone()
                .and(Expr::col("accession").eq(Expr::lit(Value::text("P00007")))),
        );
        let optimized = optimize(&db, &plan);
        assert_eq!(
            optimized.explain(),
            "IndexScan bioentry.accession = 'P00007'\n"
        );
        assert_same_rows(&db, &plan);
        // An all-true predicate removes the filter entirely.
        let plan = LogicalPlan::scan("bioentry").filter(tautology);
        assert_eq!(optimize(&db, &plan).explain(), "Scan bioentry\n");
        assert_same_rows(&db, &plan);
    }

    #[test]
    fn contradictions_over_ill_typed_predicates_are_not_pruned() {
        let db = db();
        // The contradiction mentions a column that does not exist: pruning
        // would mask the runtime UnknownColumn error.
        let plan = LogicalPlan::scan("bioentry").filter(
            Expr::col("missing")
                .eq(Expr::lit(1i64))
                .and(Expr::col("missing").eq(Expr::lit(2i64))),
        );
        let optimized = optimize(&db, &plan);
        assert!(execute(&db, &optimized).is_err());
        assert!(execute_naive(&db, &plan).is_err());
    }

    #[test]
    fn optimizer_is_a_noop_on_unknown_tables() {
        let db = db();
        let plan = LogicalPlan::scan("missing")
            .filter(Expr::col("x").eq(Expr::lit(Value::text("y"))))
            .limit(1);
        let optimized = optimize(&db, &plan);
        assert!(execute(&db, &optimized).is_err());
    }
}
