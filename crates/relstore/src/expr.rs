//! Scalar expressions evaluated against rows.

use crate::error::{RelError, RelResult};
use crate::schema::TableSchema;
use crate::table::Row;
use crate::types::DataType;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary operators supported by the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOp {
    /// Equality (`=`).
    Eq,
    /// Inequality (`<>` / `!=`).
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// SQL LIKE with `%` and `_` wildcards (case-insensitive).
    Like,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Like => "LIKE",
        };
        f.write_str(s)
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A column reference by name (possibly qualified, e.g. `bioentry.accession`).
    Column(String),
    /// A literal value.
    Literal(Value),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// `IS NULL` test.
    IsNull(Box<Expr>),
    /// `IS NOT NULL` test.
    IsNotNull(Box<Expr>),
}

impl Expr {
    /// Column reference helper.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Binary operation helper.
    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Eq, self, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::And, self, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Or, self, other)
    }

    /// `self LIKE pattern`.
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::binary(BinaryOp::Like, self, Expr::lit(Value::text(pattern.into())))
    }

    /// Names of all columns referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Column(c) => out.push(c.as_str()),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => e.collect_columns(out),
        }
    }

    /// Evaluate against a row interpreted under the given schema.
    pub fn eval(&self, schema: &TableSchema, row: &Row) -> RelResult<Value> {
        match self {
            Expr::Column(name) => {
                // Exact match, or an unqualified reference to a qualified
                // column (`accession` matching `bioentry.accession`) as long
                // as the suffix is unambiguous. Shared with the static
                // analyzer via [`TableSchema::resolve`].
                match schema.resolve(name) {
                    crate::schema::ColumnResolution::Index(idx) => Ok(row[idx].clone()),
                    _ => Err(RelError::UnknownColumn(name.clone())),
                }
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => {
                let l = left.eval(schema, row)?;
                let r = right.eval(schema, row)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Not(e) => {
                let v = e.eval(schema, row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(RelError::Eval(format!(
                        "NOT applied to non-boolean '{other}'"
                    ))),
                }
            }
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(schema, row)?.is_null())),
            Expr::IsNotNull(e) => Ok(Value::Bool(!e.eval(schema, row)?.is_null())),
        }
    }

    /// Evaluate as a predicate: NULL counts as false (SQL three-valued logic
    /// collapsed for filtering purposes).
    pub fn eval_predicate(&self, schema: &TableSchema, row: &Row) -> RelResult<bool> {
        match self.eval(schema, row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(RelError::Eval(format!(
                "predicate did not evaluate to a boolean: '{other}'"
            ))),
        }
    }

    /// Best-effort result type, used when synthesizing projection schemas.
    pub fn result_type(&self, schema: &TableSchema) -> DataType {
        match self {
            Expr::Column(name) => schema
                .column(name)
                .map(|c| c.data_type)
                .unwrap_or(DataType::Text),
            Expr::Literal(v) => v.data_type().unwrap_or(DataType::Text),
            Expr::Binary { op, left, right } => match op {
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
                    left.result_type(schema).unify(right.result_type(schema))
                }
                _ => DataType::Boolean,
            },
            Expr::Not(_) | Expr::IsNull(_) | Expr::IsNotNull(_) => DataType::Boolean,
        }
    }

    /// A printable name for projection output columns.
    pub fn display_name(&self) -> String {
        match self {
            Expr::Column(c) => c.clone(),
            other => other.to_string(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => f.write_str(c),
            Expr::Literal(Value::Text(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
        }
    }
}

fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> RelResult<Value> {
    use BinaryOp::*;
    match op {
        And | Or => {
            let lb = l.as_bool();
            let rb = r.as_bool();
            match (op, lb, rb) {
                (And, Some(false), _) | (And, _, Some(false)) => Ok(Value::Bool(false)),
                (Or, Some(true), _) | (Or, _, Some(true)) => Ok(Value::Bool(true)),
                (_, Some(a), Some(b)) => Ok(Value::Bool(if op == And { a && b } else { a || b })),
                _ => Ok(Value::Null),
            }
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = l.cmp(r);
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                Ne => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (l, r) {
                (Value::Int(a), Value::Int(b)) => Ok(match op {
                    Add => Value::Int(a.wrapping_add(*b)),
                    Sub => Value::Int(a.wrapping_sub(*b)),
                    Mul => Value::Int(a.wrapping_mul(*b)),
                    Div => {
                        if *b == 0 {
                            return Err(RelError::Eval("division by zero".into()));
                        }
                        Value::Int(a / b)
                    }
                    _ => unreachable!(),
                }),
                _ => {
                    let a = l
                        .as_float()
                        .ok_or_else(|| RelError::Eval(format!("non-numeric operand '{l}'")))?;
                    let b = r
                        .as_float()
                        .ok_or_else(|| RelError::Eval(format!("non-numeric operand '{r}'")))?;
                    match op {
                        Add => Ok(Value::float(a + b)),
                        Sub => Ok(Value::float(a - b)),
                        Mul => Ok(Value::float(a * b)),
                        Div => {
                            if b == 0.0 {
                                Err(RelError::Eval("division by zero".into()))
                            } else {
                                Ok(Value::float(a / b))
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
        Like => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let text = l.render().to_ascii_lowercase();
            let pattern = r.render().to_ascii_lowercase();
            Ok(Value::Bool(like_match(&text, &pattern)))
        }
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (any single char).
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => (0..=t.len()).any(|i| rec(&t[i..], rest)),
            Some(('_', rest)) => !t.is_empty() && rec(&t[1..], rest),
            Some((c, rest)) => t.first() == Some(c) && rec(&t[1..], rest),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn schema() -> TableSchema {
        TableSchema::of(vec![
            ColumnDef::int("id"),
            ColumnDef::text("accession"),
            ColumnDef::float("score"),
        ])
    }

    fn row() -> Row {
        vec![Value::Int(7), Value::text("P12345"), Value::Float(0.5)]
    }

    #[test]
    fn column_and_literal_eval() {
        let s = schema();
        let r = row();
        assert_eq!(Expr::col("id").eval(&s, &r).unwrap(), Value::Int(7));
        assert_eq!(
            Expr::lit(Value::text("x")).eval(&s, &r).unwrap(),
            Value::text("x")
        );
        assert!(Expr::col("missing").eval(&s, &r).is_err());
    }

    #[test]
    fn unqualified_reference_resolves_suffix() {
        let s = TableSchema::of(vec![
            ColumnDef::text("bioentry.accession"),
            ColumnDef::int("dbref_id"),
        ]);
        let r = vec![Value::text("P1"), Value::Int(1)];
        assert_eq!(
            Expr::col("accession").eval(&s, &r).unwrap(),
            Value::text("P1")
        );
    }

    #[test]
    fn ambiguous_suffix_is_an_error() {
        let s = TableSchema::of(vec![
            ColumnDef::text("a.accession"),
            ColumnDef::text("b.accession"),
        ]);
        let r = vec![Value::text("x"), Value::text("y")];
        assert!(Expr::col("accession").eval(&s, &r).is_err());
    }

    #[test]
    fn comparison_operators() {
        let s = schema();
        let r = row();
        let e = Expr::col("id").eq(Expr::lit(7i64));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(true));
        let e = Expr::binary(BinaryOp::Gt, Expr::col("score"), Expr::lit(1.0));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(false));
        let e = Expr::binary(BinaryOp::Le, Expr::col("id"), Expr::lit(7i64));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_comparisons_are_null_and_filter_false() {
        let s = TableSchema::of(vec![ColumnDef::text("x")]);
        let r = vec![Value::Null];
        let e = Expr::col("x").eq(Expr::lit("a"));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&s, &r).unwrap());
        assert_eq!(
            Expr::IsNull(Box::new(Expr::col("x"))).eval(&s, &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::IsNotNull(Box::new(Expr::col("x")))
                .eval(&s, &r)
                .unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let s = schema();
        let r = row();
        let e = Expr::binary(BinaryOp::Add, Expr::col("id"), Expr::lit(3i64));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Int(10));
        let e = Expr::binary(BinaryOp::Mul, Expr::col("score"), Expr::lit(4i64));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Float(2.0));
        let e = Expr::binary(BinaryOp::Div, Expr::col("id"), Expr::lit(0i64));
        assert!(e.eval(&s, &r).is_err());
    }

    #[test]
    fn and_or_short_circuit_with_null() {
        let s = TableSchema::of(vec![ColumnDef::text("x")]);
        let r = vec![Value::Null];
        // NULL AND false = false, NULL OR true = true
        let null_cmp = Expr::col("x").eq(Expr::lit("a"));
        let e = null_cmp.clone().and(Expr::lit(false));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(false));
        let e = null_cmp.clone().or(Expr::lit(true));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(true));
        let e = null_cmp.clone().and(Expr::lit(true));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Null);
    }

    #[test]
    fn like_matching() {
        assert!(like_match("uniprot:p11140", "uniprot:%"));
        assert!(like_match("p12345", "p____5"));
        assert!(!like_match("p12345", "q%"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", ""));
        let s = schema();
        let r = row();
        let e = Expr::col("accession").like("P12%");
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn not_requires_boolean() {
        let s = schema();
        let r = row();
        let e = Expr::Not(Box::new(Expr::col("accession")));
        assert!(e.eval(&s, &r).is_err());
        let e = Expr::Not(Box::new(Expr::lit(true)));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn referenced_columns_collects_all() {
        let e = Expr::col("a")
            .eq(Expr::col("b"))
            .and(Expr::IsNull(Box::new(Expr::col("c"))));
        let mut cols = e.referenced_columns();
        cols.sort_unstable();
        assert_eq!(cols, vec!["a", "b", "c"]);
    }

    #[test]
    fn display_round_trip_is_readable() {
        let e = Expr::col("accession")
            .like("P%")
            .and(Expr::col("id").eq(Expr::lit(1i64)));
        assert_eq!(e.to_string(), "((accession LIKE 'P%') AND (id = 1))");
    }
}
