//! Static analysis of logical plans: typed validation, satisfiability
//! reasoning and plan lints, produced *before* execution instead of as
//! runtime surprises deep inside the streaming operators.
//!
//! [`analyze`] walks a [`LogicalPlan`] against a [`Database`] catalog and
//! returns an [`Analysis`] — a list of structured [`Diagnostic`]s, each with
//! a severity, a stable code, a human message and the plan path it was found
//! at. Three layers run in one pass:
//!
//! 1. **Schema resolution + type inference.** Every column reference is
//!    resolved with the exact rules the executors use (case-insensitive
//!    exact match, then unambiguous qualified-suffix match — see
//!    [`TableSchema::resolve`]); comparison, arithmetic, aggregate and
//!    join-key operand types are checked; unknown tables and columns come
//!    with "did you mean" suggestions.
//! 2. **Satisfiability over conjunctive predicates.** Interval reasoning on
//!    equality/range constraints proves contradictions (`a = 1 AND a = 2`,
//!    `x > 10 AND x < 5`) and constant-true tautologies. The optimizer
//!    shares this engine to collapse proven-empty subtrees to
//!    [`LogicalPlan::Empty`] and to drop tautological filters.
//! 3. **Plan lints.** Near-cartesian joins, `Sort` without `Limit` over a
//!    large input, dead projection columns, and equality predicates that no
//!    hash index can serve.
//!
//! Severity semantics: an [`Severity::Error`] means the plan is guaranteed
//! (or statically certain under declared column types) to fail at runtime —
//! strict execution ([`crate::exec::execute_checked`]) refuses such plans. A
//! [`Severity::Warning`] means the query runs but almost surely not as
//! intended (it can never match, or always matches). A [`Severity::Lint`]
//! is a performance or style observation.
//!
//! ```
//! use aladin_relstore::{analyze, Database, ColumnDef, TableSchema, sql};
//!
//! let mut db = Database::new("demo");
//! db.create_table("bioentry", TableSchema::of(vec![
//!     ColumnDef::int("bioentry_id"),
//!     ColumnDef::text("accession"),
//! ])).unwrap();
//! let plan = sql::parse("SELECT * FROM bioentry WHERE accesion = 'P1'").unwrap();
//! let analysis = analyze::analyze(&db, &plan);
//! assert!(analysis.has_errors());
//! assert!(analysis.render().contains("did you mean 'accession'?"));
//! ```

use crate::catalog::Database;
use crate::error::RelError;
use crate::expr::{BinaryOp, Expr};
use crate::plan::{AggFunc, Aggregate, LogicalPlan, SortKey};
use crate::schema::{ColumnDef, ColumnResolution, TableSchema};
use crate::types::DataType;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;

/// Inputs estimated at or above this many rows count as "large" for the
/// plan lints (unbounded sorts, unindexable equality predicates,
/// near-cartesian joins). Small fixtures stay lint-free.
pub const LARGE_INPUT_ROWS: f64 = 1000.0;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A performance or style observation; the query is correct.
    Lint,
    /// The query runs, but almost surely not as intended.
    Warning,
    /// The plan is statically certain to fail (or be rejected) at runtime.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Lint => "lint",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A byte-offset range into the source text a diagnostic refers to. Parse
/// errors always carry one; plan-level diagnostics usually do not (plans
/// may never have had a textual form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first offending byte.
    pub start: usize,
    /// Byte offset one past the last offending byte (`start == end` marks a
    /// point, e.g. an unexpected end of input).
    pub end: usize,
}

impl Span {
    /// A span covering `start..end` (byte offsets).
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }
}

/// One finding of the static analyzer (or the SQL parser, which reuses this
/// type so error output and EXPLAIN share a single rendering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How severe the finding is.
    pub severity: Severity,
    /// Stable machine-readable code (`E1xx` type errors, `W2xx`
    /// semantic warnings, `L3xx` lints, `P0xx` parse errors).
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Path from the plan root to the node the finding is at, e.g.
    /// `Filter > Scan bioentry`. Empty for parse errors.
    pub path: String,
    /// Byte span into the source text, when one is known.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Render as a single stable line: `severity[code] at path: message`
    /// (the `at path` part is omitted when no path is known).
    pub fn render(&self) -> String {
        if self.path.is_empty() {
            format!("{}[{}]: {}", self.severity, self.code, self.message)
        } else {
            format!(
                "{}[{}] at {}: {}",
                self.severity, self.code, self.path, self.message
            )
        }
    }

    /// Render with caret context pointing into `source`, when the diagnostic
    /// carries a span. Used by SQL parse errors; analyzer diagnostics render
    /// the same way whenever a span is attached.
    pub fn render_with_source(&self, source: &str) -> String {
        let mut out = self.render();
        if let Some(span) = self.span {
            out.push('\n');
            out.push_str(&render_span(source, span));
        }
        out
    }
}

/// The caret-context block shared by parse errors and spanned analyzer
/// diagnostics: the source line containing the span, with `^` markers under
/// the offending bytes.
pub fn render_span(source: &str, span: Span) -> String {
    let start = span.start.min(source.len());
    let line_start = source[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = source[start..]
        .find('\n')
        .map(|i| start + i)
        .unwrap_or(source.len());
    let line = &source[line_start..line_end];
    let lead = source[line_start..start].chars().count();
    let end = span.end.clamp(start, line_end);
    let width = source[start..end].chars().count().max(1);
    format!(
        "  |\n  | {line}\n  | {}{}",
        " ".repeat(lead),
        "^".repeat(width)
    )
}

/// The result of analyzing a plan: all diagnostics, most severe first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Analysis {
    diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// All diagnostics, most severe first (stable within a severity).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// True when the analyzer found nothing at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one [`Severity::Error`] diagnostic is present;
    /// strict execution refuses such plans.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// True when the analyzer proved the plan returns no rows (an
    /// unsatisfiable predicate was found, code `W201`).
    pub fn proven_empty(&self) -> bool {
        self.diagnostics.iter().any(|d| d.code == "W201")
    }

    /// All diagnostics rendered one per line (trailing newline included);
    /// empty string when clean.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out
    }

    /// The `Analysis:` section appended to EXPLAIN output — the rendered
    /// diagnostics indented under a header, or an empty string when clean
    /// so clean plans keep their exact historical EXPLAIN text.
    pub fn explain_section(&self) -> String {
        if self.diagnostics.is_empty() {
            return String::new();
        }
        let mut out = String::from("Analysis:\n");
        for d in &self.diagnostics {
            out.push_str("  ");
            out.push_str(&d.render());
            out.push('\n');
        }
        out
    }

    /// Convert the error diagnostics into the [`RelError::Analysis`] a
    /// strict execution path returns; `None` when there are none.
    pub fn to_error(&self) -> Option<RelError> {
        let errors: Vec<&Diagnostic> = self.errors().collect();
        let first = errors.first()?;
        let msg = if errors.len() == 1 {
            first.render()
        } else {
            format!("{} (+{} more)", first.render(), errors.len() - 1)
        };
        Some(RelError::Analysis(msg))
    }
}

/// Statically analyze `plan` against `db`. Never fails: problems are
/// reported as diagnostics, and subtrees whose schema cannot be derived are
/// skipped instead of cascading. The pass is a single plan walk over catalog
/// metadata — it reads no table rows, so it is cheap relative to executing
/// the query (measured in `exp_relstore` as `analyze_us`).
pub fn analyze(db: &Database, plan: &LogicalPlan) -> Analysis {
    let mut checker = Checker {
        db,
        path: Vec::new(),
        diags: Vec::new(),
    };
    checker.check(plan, None, false, false);
    checker.diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
    Analysis {
        diagnostics: checker.diags,
    }
}

/// True when `expr` type-checks against `schema` without any error-severity
/// diagnostic. The optimizer only prunes a proven-empty filter whose
/// predicate passes this check, so pruning never masks a runtime type error.
pub(crate) fn expr_is_well_typed(expr: &Expr, schema: &TableSchema) -> bool {
    let db = Database::new("::expr-check");
    let mut checker = Checker {
        db: &db,
        path: Vec::new(),
        diags: Vec::new(),
    };
    checker.expr_type(expr, schema);
    !checker.diags.iter().any(|d| d.severity == Severity::Error)
}

// ---------------------------------------------------------------------------
// The plan walker
// ---------------------------------------------------------------------------

struct Checker<'a> {
    db: &'a Database,
    path: Vec<String>,
    diags: Vec<Diagnostic>,
}

impl Checker<'_> {
    fn diag(&mut self, severity: Severity, code: &'static str, message: String) {
        self.diags.push(Diagnostic {
            severity,
            code,
            message,
            path: self.path.join(" > "),
            span: None,
        });
    }

    /// Walk one node. `needed` is the set of lowercase output columns the
    /// ancestors consume (`None` = all of them), `bounded` is true when a
    /// `Limit` sits directly above (through `Offset`), `in_filter_stack`
    /// when the parent was a `Filter` (satisfiability runs once per stack).
    /// Returns the node's output schema, or `None` after an unrecoverable
    /// resolution error (reported; downstream checks are skipped).
    fn check(
        &mut self,
        plan: &LogicalPlan,
        needed: Option<&HashSet<String>>,
        bounded: bool,
        in_filter_stack: bool,
    ) -> Option<TableSchema> {
        self.path.push(node_label(plan));
        let schema = match plan {
            LogicalPlan::Scan { table } => self.check_table(table),
            LogicalPlan::IndexScan {
                table,
                column,
                value,
            } => self.check_index_scan(table, column, value),
            LogicalPlan::Filter { input, predicate } => {
                self.check_filter(plan, input, predicate, needed, in_filter_stack)
            }
            LogicalPlan::Project { input, exprs } => self.check_project(input, exprs, needed),
            LogicalPlan::Join {
                left,
                right,
                left_col,
                right_col,
                left_qualifier,
                right_qualifier,
                ..
            } => self.check_join(
                left,
                right,
                left_col,
                right_col,
                left_qualifier,
                right_qualifier,
            ),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => self.check_aggregate(input, group_by, aggregates),
            LogicalPlan::Sort { input, keys } => self.check_sort(input, keys, needed, bounded),
            LogicalPlan::Limit { input, .. } => self.check(input, needed, true, false),
            LogicalPlan::Offset { input, .. } => self.check(input, needed, bounded, false),
            LogicalPlan::Empty { schema } => Some(schema.clone()),
        };
        self.path.pop();
        schema
    }

    fn check_table(&mut self, table: &str) -> Option<TableSchema> {
        match self.db.table(table) {
            Ok(t) => Some(t.schema().clone()),
            Err(_) => {
                let names = self.db.table_names();
                let hint = did_you_mean(table, names.iter().copied());
                self.diag(
                    Severity::Error,
                    "E101",
                    format!("unknown table '{table}'{hint}"),
                );
                None
            }
        }
    }

    fn check_index_scan(
        &mut self,
        table: &str,
        column: &str,
        value: &Value,
    ) -> Option<TableSchema> {
        let schema = self.check_table(table)?;
        let Some(idx) = schema.index_of(column) else {
            let hint = did_you_mean(column, schema.column_names().into_iter());
            self.diag(
                Severity::Error,
                "E102",
                format!("unknown column '{column}' in table '{table}'{hint}"),
            );
            return Some(schema);
        };
        let col_type = schema.columns()[idx].data_type;
        if let Some(vt) = value.data_type() {
            if type_class(vt) != type_class(col_type) {
                self.diag(
                    Severity::Warning,
                    "W203",
                    format!(
                        "index probe value {} ({vt}) can never equal a {col_type} column '{column}'",
                        Expr::Literal(value.clone())
                    ),
                );
            }
        }
        Some(schema)
    }

    fn check_filter(
        &mut self,
        node: &LogicalPlan,
        input: &LogicalPlan,
        predicate: &Expr,
        needed: Option<&HashSet<String>>,
        in_filter_stack: bool,
    ) -> Option<TableSchema> {
        // The filter passes rows through, so its input must produce whatever
        // the ancestors need plus the predicate's own columns.
        let widened = needed.map(|n| {
            let mut n = n.clone();
            for c in predicate.referenced_columns() {
                n.insert(c.to_ascii_lowercase());
            }
            n
        });
        let schema = self.check(input, widened.as_ref(), false, true)?;

        if let Some(t) = self.expr_type(predicate, &schema) {
            if t != DataType::Boolean {
                self.diag(
                    Severity::Error,
                    "E106",
                    format!("filter predicate {predicate} has type {t}, expected BOOLEAN"),
                );
            }
        }

        // Satisfiability runs once per stack of directly nested filters,
        // over the merged conjunct list (exactly what the optimizer merges).
        if !in_filter_stack {
            let mut conjuncts = Vec::new();
            let mut cursor = node;
            while let LogicalPlan::Filter {
                input, predicate, ..
            } = cursor
            {
                collect_conjuncts(predicate, &mut conjuncts);
                cursor = input;
            }
            match conjunction_satisfiability(&conjuncts) {
                Satisfiability::Contradiction(why) => self.diag(
                    Severity::Warning,
                    "W201",
                    format!("predicate is unsatisfiable ({why}): the query returns no rows"),
                ),
                Satisfiability::Satisfiable { true_conjuncts } => {
                    if !conjuncts.is_empty() && true_conjuncts.len() == conjuncts.len() {
                        self.diag(
                            Severity::Warning,
                            "W202",
                            "predicate is always true: the filter keeps every row".to_string(),
                        );
                    }
                }
            }
        }

        // Lint: an equality conjunct directly over a large base scan that no
        // hash index can serve (the IndexScan rewrite requires a
        // render-faithful literal: text on any column, integer on an
        // INTEGER column).
        if let LogicalPlan::Scan { table } = unwrap_filters(input) {
            if let Ok(t) = self.db.table(table) {
                if t.row_count() as f64 >= LARGE_INPUT_ROWS {
                    let mut conjuncts = Vec::new();
                    collect_conjuncts(predicate, &mut conjuncts);
                    for c in &conjuncts {
                        let Some((col, BinaryOp::Eq, value)) = as_column_cmp_literal(c) else {
                            continue;
                        };
                        let Some(idx) = schema.index_of(col) else {
                            continue;
                        };
                        let col_type = schema.columns()[idx].data_type;
                        let eligible = match value {
                            Value::Text(_) => true,
                            Value::Int(_) => col_type == DataType::Integer,
                            _ => false,
                        };
                        if !eligible {
                            self.diag(
                                Severity::Lint,
                                "L302",
                                format!(
                                    "equality {c} over the {} rows of '{table}' cannot be served \
                                     by a hash index ({} literal on a {col_type} column): full scan",
                                    t.row_count(),
                                    value
                                        .data_type()
                                        .map(|t| t.to_string())
                                        .unwrap_or_else(|| "NULL".into()),
                                ),
                            );
                        }
                    }
                }
            }
        }
        Some(schema)
    }

    fn check_project(
        &mut self,
        input: &LogicalPlan,
        exprs: &[(Expr, String)],
        needed: Option<&HashSet<String>>,
    ) -> Option<TableSchema> {
        let mut referenced: HashSet<String> = HashSet::new();
        for (e, _) in exprs {
            for c in e.referenced_columns() {
                referenced.insert(c.to_ascii_lowercase());
            }
        }
        let schema = self.check(input, Some(&referenced), false, false)?;
        if let Some(need) = needed {
            for (_, name) in exprs {
                if !need.contains(&name.to_ascii_lowercase()) {
                    self.diag(
                        Severity::Lint,
                        "L304",
                        format!("projected column '{name}' is never used by the operators above"),
                    );
                }
            }
        }
        for (e, _) in exprs {
            self.expr_type(e, &schema);
        }
        // Mirror the executors' output-schema derivation exactly, including
        // its duplicate-name rejection.
        let cols: Vec<ColumnDef> = exprs
            .iter()
            .map(|(e, name)| ColumnDef::new(name.clone(), e.result_type(&schema)))
            .collect();
        match TableSchema::new(cols) {
            Ok(out) => Some(out),
            Err(e) => {
                self.diag(
                    Severity::Error,
                    "E109",
                    format!("projection output names collide: {e}"),
                );
                None
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_join(
        &mut self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        left_col: &str,
        right_col: &str,
        left_qualifier: &str,
        right_qualifier: &str,
    ) -> Option<TableSchema> {
        let l = self.check(left, None, false, false);
        let r = self.check(right, None, false, false);
        let (l, r) = (l?, r?);
        // The join executors resolve key columns with exact (require)
        // semantics, not suffix resolution — mirror that.
        let mut key_types: Vec<Option<DataType>> = Vec::new();
        for (schema, col, side) in [(&l, left_col, "left"), (&r, right_col, "right")] {
            match schema.index_of(col) {
                Some(i) => key_types.push(Some(schema.columns()[i].data_type)),
                None => {
                    let hint = did_you_mean(col, schema.column_names().into_iter());
                    self.diag(
                        Severity::Error,
                        "E102",
                        format!("unknown join column '{col}' in the {side} input{hint}"),
                    );
                    key_types.push(None);
                }
            }
        }
        if let (Some(lt), Some(rt)) = (key_types[0], key_types[1]) {
            if type_class(lt) != type_class(rt) {
                self.diag(
                    Severity::Warning,
                    "W204",
                    format!(
                        "join keys have incompatible types ({lt} vs {rt}): \
                         the join can never match"
                    ),
                );
            }
        }
        // Lint: both key columns near-constant over large base tables makes
        // the equi-join expand to (almost) the cartesian product.
        let near_constant = |plan: &LogicalPlan, col: &str| -> bool {
            let LogicalPlan::Scan { table } = plan else {
                return false;
            };
            let (Ok(stats), Ok(t)) = (self.db.column_stats(table, col), self.db.table(table))
            else {
                return false;
            };
            let rows = t.row_count() as f64;
            rows >= LARGE_INPUT_ROWS && stats.estimated_eq_rows() >= rows * 0.5
        };
        if near_constant(left, left_col) && near_constant(right, right_col) {
            self.diag(
                Severity::Lint,
                "L303",
                format!(
                    "join keys '{left_col}' and '{right_col}' are near-constant: \
                     the join degenerates to a cartesian product"
                ),
            );
        }
        Some(l.join(&r, left_qualifier, right_qualifier))
    }

    fn check_aggregate(
        &mut self,
        input: &LogicalPlan,
        group_by: &[String],
        aggregates: &[Aggregate],
    ) -> Option<TableSchema> {
        let mut referenced: HashSet<String> =
            group_by.iter().map(|c| c.to_ascii_lowercase()).collect();
        for a in aggregates {
            if let Some(c) = &a.column {
                referenced.insert(c.to_ascii_lowercase());
            }
        }
        let schema = self.check(input, Some(&referenced), false, false)?;
        // The aggregate executors resolve all columns with require (exact)
        // semantics.
        for c in group_by {
            if schema.index_of(c).is_none() {
                let hint = did_you_mean(c, schema.column_names().into_iter());
                self.diag(
                    Severity::Error,
                    "E102",
                    format!("unknown GROUP BY column '{c}'{hint}"),
                );
            }
        }
        for a in aggregates {
            match &a.column {
                None => {
                    if a.func != AggFunc::Count {
                        self.diag(
                            Severity::Error,
                            "E108",
                            format!("{}(*) is not defined: {} requires a column", a.func, a.func),
                        );
                    }
                }
                Some(c) => match schema.index_of(c) {
                    None => {
                        let hint = did_you_mean(c, schema.column_names().into_iter());
                        self.diag(
                            Severity::Error,
                            "E102",
                            format!("unknown column '{c}' in {}({c}){hint}", a.func),
                        );
                    }
                    Some(i) => {
                        let t = schema.columns()[i].data_type;
                        if matches!(a.func, AggFunc::Sum | AggFunc::Avg) && !t.is_numeric() {
                            self.diag(
                                Severity::Error,
                                "E107",
                                format!("{}({c}) over a {t} column is not numeric", a.func),
                            );
                        }
                    }
                },
            }
        }
        match crate::exec::aggregate_schema(&schema, group_by, aggregates) {
            Ok(out) => Some(out),
            Err(e) => {
                self.diag(
                    Severity::Error,
                    "E109",
                    format!("aggregate output names collide: {e}"),
                );
                None
            }
        }
    }

    fn check_sort(
        &mut self,
        input: &LogicalPlan,
        keys: &[SortKey],
        needed: Option<&HashSet<String>>,
        bounded: bool,
    ) -> Option<TableSchema> {
        let widened = needed.map(|n| {
            let mut n = n.clone();
            for k in keys {
                n.insert(k.column.to_ascii_lowercase());
            }
            n
        });
        let schema = self.check(input, widened.as_ref(), false, false)?;
        for k in keys {
            if schema.index_of(&k.column).is_none() {
                let hint = did_you_mean(&k.column, schema.column_names().into_iter());
                self.diag(
                    Severity::Error,
                    "E102",
                    format!("unknown ORDER BY column '{}'{hint}", k.column),
                );
            }
        }
        if !bounded {
            let est = crate::optimize::estimate_rows(self.db, input);
            if est >= LARGE_INPUT_ROWS {
                self.diag(
                    Severity::Lint,
                    "L301",
                    format!(
                        "Sort over an estimated {est:.0} rows with no Limit above it \
                         materializes and orders the whole input"
                    ),
                );
            }
        }
        Some(schema)
    }

    /// Infer the static type of an expression, reporting type errors as it
    /// goes. `None` means "unknown" (a NULL literal, or a subexpression that
    /// already failed to resolve) — unknown operands are never re-reported.
    fn expr_type(&mut self, e: &Expr, schema: &TableSchema) -> Option<DataType> {
        match e {
            Expr::Column(name) => match schema.resolve(name) {
                ColumnResolution::Index(i) => Some(schema.columns()[i].data_type),
                ColumnResolution::Ambiguous(candidates) => {
                    self.diag(
                        Severity::Error,
                        "E103",
                        format!(
                            "ambiguous column '{name}': matches {}",
                            candidates
                                .iter()
                                .map(|c| format!("'{c}'"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    );
                    None
                }
                ColumnResolution::Unknown => {
                    let hint = did_you_mean(name, schema.column_names().into_iter());
                    self.diag(
                        Severity::Error,
                        "E102",
                        format!("unknown column '{name}'{hint}"),
                    );
                    None
                }
            },
            Expr::Literal(v) => v.data_type(),
            Expr::Binary { op, left, right } => {
                let lt = self.expr_type(left, schema);
                let rt = self.expr_type(right, schema);
                match op {
                    BinaryOp::Eq
                    | BinaryOp::Ne
                    | BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge => {
                        if let (Some(l), Some(r)) = (lt, rt) {
                            if type_class(l) != type_class(r) {
                                self.diag(
                                    Severity::Warning,
                                    "W203",
                                    format!(
                                        "comparison {e} mixes {l} and {r}: under the total \
                                         value order its outcome never depends on the data"
                                    ),
                                );
                            }
                        }
                        Some(DataType::Boolean)
                    }
                    BinaryOp::And | BinaryOp::Or => {
                        for (t, side) in [(lt, left), (rt, right)] {
                            if let Some(t) = t {
                                if t != DataType::Boolean {
                                    self.diag(
                                        Severity::Warning,
                                        "W205",
                                        format!(
                                            "operand {side} of {op} has type {t}: \
                                             non-boolean operands evaluate to NULL"
                                        ),
                                    );
                                }
                            }
                        }
                        Some(DataType::Boolean)
                    }
                    BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
                        for (t, side) in [(lt, left), (rt, right)] {
                            if let Some(t) = t {
                                if !t.is_numeric() {
                                    self.diag(
                                        Severity::Error,
                                        "E104",
                                        format!("arithmetic operand {side} has type {t}"),
                                    );
                                }
                            }
                        }
                        if *op == BinaryOp::Div {
                            if let Expr::Literal(v) = &**right {
                                if matches!(v, Value::Int(0))
                                    || matches!(v, Value::Float(f) if *f == 0.0)
                                {
                                    self.diag(
                                        Severity::Error,
                                        "E110",
                                        format!("division by zero in {e}"),
                                    );
                                }
                            }
                        }
                        match (lt, rt) {
                            (Some(DataType::Integer), Some(DataType::Integer)) => {
                                Some(DataType::Integer)
                            }
                            (Some(l), Some(r)) if l.is_numeric() && r.is_numeric() => {
                                Some(DataType::Float)
                            }
                            _ => None,
                        }
                    }
                    BinaryOp::Like => Some(DataType::Boolean),
                }
            }
            Expr::Not(inner) => {
                if let Some(t) = self.expr_type(inner, schema) {
                    if t != DataType::Boolean {
                        self.diag(
                            Severity::Error,
                            "E105",
                            format!("NOT applied to a {t} operand {inner}"),
                        );
                    }
                }
                Some(DataType::Boolean)
            }
            Expr::IsNull(inner) | Expr::IsNotNull(inner) => {
                self.expr_type(inner, schema);
                Some(DataType::Boolean)
            }
        }
    }
}

fn node_label(plan: &LogicalPlan) -> String {
    match plan {
        LogicalPlan::Scan { table } => format!("Scan {table}"),
        LogicalPlan::IndexScan { table, column, .. } => format!("IndexScan {table}.{column}"),
        LogicalPlan::Filter { .. } => "Filter".into(),
        LogicalPlan::Project { .. } => "Project".into(),
        LogicalPlan::Join { .. } => "HashJoin".into(),
        LogicalPlan::Aggregate { .. } => "Aggregate".into(),
        LogicalPlan::Sort { .. } => "Sort".into(),
        LogicalPlan::Limit { .. } => "Limit".into(),
        LogicalPlan::Offset { .. } => "Offset".into(),
        LogicalPlan::Empty { .. } => "Empty".into(),
    }
}

/// Skip over nested filters to the node they all sit on.
fn unwrap_filters(plan: &LogicalPlan) -> &LogicalPlan {
    let mut cursor = plan;
    while let LogicalPlan::Filter { input, .. } = cursor {
        cursor = input;
    }
    cursor
}

/// Comparable type classes under [`Value`]'s total order: integers and
/// floats compare numerically, everything else only within its own class.
fn type_class(t: DataType) -> u8 {
    match t {
        DataType::Integer | DataType::Float => 0,
        DataType::Text => 1,
        DataType::Boolean => 2,
    }
}

/// A `(did you mean ...?)` suffix for an unknown name, or empty when no
/// candidate is close enough (edit distance ≤ 2, or ≤ a third of the name).
fn did_you_mean<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> String {
    let lowered = name.to_ascii_lowercase();
    let mut best: Option<(usize, &str)> = None;
    for c in candidates {
        // Qualified columns also match on their unqualified suffix.
        for variant in [c, c.rsplit('.').next().unwrap_or(c)] {
            let d = edit_distance(&lowered, &variant.to_ascii_lowercase());
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, c));
            }
        }
    }
    match best {
        Some((d, c)) if d > 0 && d <= 2.max(name.len() / 3) => format!(" (did you mean '{c}'?)"),
        _ => String::new(),
    }
}

/// Classic dynamic-programming Levenshtein distance; names are short so the
/// O(n·m) cost is irrelevant.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

// ---------------------------------------------------------------------------
// Satisfiability of conjunctive predicates
// ---------------------------------------------------------------------------

/// Verdict of [`conjunction_satisfiability`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Satisfiability {
    /// The conjunction can never hold; the payload explains why.
    Contradiction(String),
    /// No contradiction was proven. `true_conjuncts` are the indices of
    /// conjuncts proven constant-true (safe to drop from the predicate).
    Satisfiable { true_conjuncts: Vec<usize> },
}

/// Split a predicate into AND-ed conjuncts (the same decomposition the
/// optimizer uses).
pub(crate) fn collect_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinaryOp::And,
        left,
        right,
    } = e
    {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

/// Interval reasoning over a conjunct list. Sound by construction:
///
/// * Column bounds come only from `column <op> literal` conjuncts and use
///   [`Value`]'s total order — exactly the order the executors compare with,
///   so mixed-type constraints are handled consistently.
/// * A contradiction on non-null values extends to NULLs for free: a NULL
///   column value fails every comparison anyway.
/// * Conjuncts that reference no column are constant-folded with the same
///   evaluator the executors use; constant FALSE/NULL conjuncts are
///   contradictions, constant TRUE conjuncts are tautologies.
/// * Everything else (ORs, column-to-column comparisons, LIKE, IS NULL) is
///   opaque and assumed satisfiable.
pub(crate) fn conjunction_satisfiability(conjuncts: &[Expr]) -> Satisfiability {
    let empty_schema = TableSchema::default();
    let empty_row: Vec<Value> = Vec::new();
    let mut domains: Vec<(String, Domain)> = Vec::new();
    let mut true_conjuncts = Vec::new();

    for (i, conjunct) in conjuncts.iter().enumerate() {
        if conjunct.referenced_columns().is_empty() {
            match conjunct.eval(&empty_schema, &empty_row) {
                Ok(Value::Bool(true)) => true_conjuncts.push(i),
                Ok(Value::Bool(false)) => {
                    return Satisfiability::Contradiction(format!("{conjunct} is constant FALSE"));
                }
                Ok(Value::Null) => {
                    return Satisfiability::Contradiction(format!(
                        "{conjunct} is constant NULL, which filters as FALSE"
                    ));
                }
                _ => {} // non-boolean constant or evaluation error: opaque
            }
            continue;
        }
        let Some((col, op, value)) = as_column_cmp_literal(conjunct) else {
            continue;
        };
        if value.is_null() {
            return Satisfiability::Contradiction(format!(
                "{conjunct} compares with NULL and is never true"
            ));
        }
        let key = col.to_ascii_lowercase();
        let domain = match domains.iter_mut().find(|(k, _)| *k == key) {
            Some((_, d)) => d,
            None => {
                domains.push((key, Domain::default()));
                &mut domains.last_mut().expect("just pushed").1
            }
        };
        if let Err(why) = domain.apply(op, value, &conjunct.to_string()) {
            return Satisfiability::Contradiction(why);
        }
    }
    Satisfiability::Satisfiable { true_conjuncts }
}

/// One end of a column's admissible interval, remembering the conjunct that
/// set it for contradiction messages.
#[derive(Debug, Clone)]
struct Bound {
    value: Value,
    strict: bool,
    source: String,
}

/// The constraints accumulated for one column.
#[derive(Debug, Clone, Default)]
struct Domain {
    eq: Option<(Value, String)>,
    ne: Vec<(Value, String)>,
    lo: Option<Bound>,
    hi: Option<Bound>,
}

impl Domain {
    fn apply(&mut self, op: BinaryOp, value: &Value, source: &str) -> Result<(), String> {
        match op {
            BinaryOp::Eq => {
                if let Some((v, s)) = &self.eq {
                    if v.cmp(value) != Ordering::Equal {
                        return Err(format!("{s} contradicts {source}"));
                    }
                } else {
                    self.eq = Some((value.clone(), source.to_string()));
                }
            }
            BinaryOp::Ne => {
                self.ne.push((value.clone(), source.to_string()));
            }
            BinaryOp::Lt | BinaryOp::Le => {
                let strict = op == BinaryOp::Lt;
                let tighter = match &self.hi {
                    None => true,
                    Some(b) => match value.cmp(&b.value) {
                        Ordering::Less => true,
                        Ordering::Equal => strict && !b.strict,
                        Ordering::Greater => false,
                    },
                };
                if tighter {
                    self.hi = Some(Bound {
                        value: value.clone(),
                        strict,
                        source: source.to_string(),
                    });
                }
            }
            BinaryOp::Gt | BinaryOp::Ge => {
                let strict = op == BinaryOp::Gt;
                let tighter = match &self.lo {
                    None => true,
                    Some(b) => match value.cmp(&b.value) {
                        Ordering::Greater => true,
                        Ordering::Equal => strict && !b.strict,
                        Ordering::Less => false,
                    },
                };
                if tighter {
                    self.lo = Some(Bound {
                        value: value.clone(),
                        strict,
                        source: source.to_string(),
                    });
                }
            }
            _ => {}
        }
        self.validate()
    }

    fn validate(&self) -> Result<(), String> {
        if let (Some(lo), Some(hi)) = (&self.lo, &self.hi) {
            match lo.value.cmp(&hi.value) {
                Ordering::Greater => {
                    return Err(format!("{} contradicts {}", lo.source, hi.source));
                }
                Ordering::Equal if lo.strict || hi.strict => {
                    return Err(format!("{} contradicts {}", lo.source, hi.source));
                }
                _ => {}
            }
        }
        if let Some((v, s)) = &self.eq {
            if let Some(lo) = &self.lo {
                let ord = v.cmp(&lo.value);
                if ord == Ordering::Less || (ord == Ordering::Equal && lo.strict) {
                    return Err(format!("{s} contradicts {}", lo.source));
                }
            }
            if let Some(hi) = &self.hi {
                let ord = v.cmp(&hi.value);
                if ord == Ordering::Greater || (ord == Ordering::Equal && hi.strict) {
                    return Err(format!("{s} contradicts {}", hi.source));
                }
            }
            for (nv, ns) in &self.ne {
                if v.cmp(nv) == Ordering::Equal {
                    return Err(format!("{s} contradicts {ns}"));
                }
            }
        }
        Ok(())
    }
}

/// Match `column <cmp> literal` in either orientation, flipping the operator
/// when the literal is on the left.
pub(crate) fn as_column_cmp_literal(e: &Expr) -> Option<(&str, BinaryOp, &Value)> {
    let Expr::Binary { op, left, right } = e else {
        return None;
    };
    let flipped = match op {
        BinaryOp::Eq => BinaryOp::Eq,
        BinaryOp::Ne => BinaryOp::Ne,
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        _ => return None,
    };
    match (&**left, &**right) {
        (Expr::Column(c), Expr::Literal(v)) => Some((c.as_str(), *op, v)),
        (Expr::Literal(v), Expr::Column(c)) => Some((c.as_str(), flipped, v)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new("src");
        db.create_table(
            "bioentry",
            TableSchema::of(vec![
                ColumnDef::int("bioentry_id"),
                ColumnDef::text("accession"),
                ColumnDef::text("organism"),
                ColumnDef::float("score"),
            ]),
        )
        .unwrap();
        db.create_table(
            "dbref",
            TableSchema::of(vec![
                ColumnDef::int("dbref_id"),
                ColumnDef::int("bioentry_id"),
                ColumnDef::text("target"),
            ]),
        )
        .unwrap();
        for i in 0..5i64 {
            db.insert(
                "bioentry",
                vec![
                    Value::Int(i),
                    Value::text(format!("P{i:05}")),
                    Value::text("human"),
                    Value::Float(i as f64 / 10.0),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn clean_plans_stay_clean() {
        let db = db();
        let plan = crate::sql::parse(
            "SELECT accession FROM bioentry WHERE accession LIKE 'P%' ORDER BY accession LIMIT 2",
        )
        .unwrap();
        let analysis = analyze(&db, &plan);
        assert!(analysis.is_clean(), "{}", analysis.render());
        assert_eq!(analysis.explain_section(), "");
    }

    #[test]
    fn unknown_names_get_suggestions_and_paths() {
        let db = db();
        let plan = crate::sql::parse("SELECT * FROM bioentries WHERE acc = 1").unwrap();
        let analysis = analyze(&db, &plan);
        assert!(analysis.has_errors());
        let rendered = analysis.render();
        assert!(
            rendered.contains("error[E101] at Filter > Scan bioentries"),
            "{rendered}"
        );
        assert!(rendered.contains("did you mean 'bioentry'?"), "{rendered}");

        let plan = crate::sql::parse("SELECT accesion FROM bioentry").unwrap();
        let rendered = analyze(&db, &plan).render();
        assert!(rendered.contains("unknown column 'accesion'"), "{rendered}");
        assert!(rendered.contains("did you mean 'accession'?"), "{rendered}");
    }

    #[test]
    fn type_errors_are_reported() {
        let db = db();
        // Arithmetic over a text column.
        let plan = LogicalPlan::scan("bioentry").filter(Expr::Binary {
            op: BinaryOp::Gt,
            left: Box::new(Expr::Binary {
                op: BinaryOp::Add,
                left: Box::new(Expr::Column("accession".into())),
                right: Box::new(Expr::Literal(Value::Int(1))),
            }),
            right: Box::new(Expr::Literal(Value::Int(2))),
        });
        let analysis = analyze(&db, &plan);
        assert!(analysis.errors().any(|d| d.code == "E104"));
        // A non-boolean filter predicate.
        let plan = crate::sql::parse("SELECT * FROM bioentry WHERE organism").unwrap();
        assert!(analyze(&db, &plan).errors().any(|d| d.code == "E106"));
        // SUM over text.
        let plan = crate::sql::parse("SELECT SUM(organism) AS s FROM bioentry").unwrap();
        assert!(analyze(&db, &plan).errors().any(|d| d.code == "E107"));
    }

    #[test]
    fn satisfiability_proves_contradictions_and_tautologies() {
        let db = db();
        for sql in [
            "SELECT * FROM bioentry WHERE organism = 'a' AND organism = 'b'",
            "SELECT * FROM bioentry WHERE score > 10 AND score < 5",
            "SELECT * FROM bioentry WHERE bioentry_id = 1 AND bioentry_id > 5",
            "SELECT * FROM bioentry WHERE bioentry_id = 3 AND bioentry_id <> 3",
            "SELECT * FROM bioentry WHERE score >= 1 AND score < 1",
            "SELECT * FROM bioentry WHERE 1 = 2",
            "SELECT * FROM bioentry WHERE organism = NULL",
        ] {
            let plan = crate::sql::parse(sql).unwrap();
            let analysis = analyze(&db, &plan);
            assert!(analysis.proven_empty(), "{sql}: {}", analysis.render());
        }
        let plan = crate::sql::parse("SELECT * FROM bioentry WHERE 1 = 1 AND TRUE").unwrap();
        let analysis = analyze(&db, &plan);
        assert!(analysis.diagnostics().iter().any(|d| d.code == "W202"));

        // Satisfiable ranges stay quiet.
        let plan =
            crate::sql::parse("SELECT * FROM bioentry WHERE score > 0.1 AND score < 0.4").unwrap();
        assert!(!analyze(&db, &plan).proven_empty());
    }

    #[test]
    fn mixed_type_comparisons_warn_but_do_not_error() {
        let db = db();
        let plan = crate::sql::parse("SELECT * FROM bioentry WHERE bioentry_id = 'x'").unwrap();
        let analysis = analyze(&db, &plan);
        assert!(!analysis.has_errors());
        assert!(analysis.diagnostics().iter().any(|d| d.code == "W203"));
    }

    #[test]
    fn ambiguous_suffix_is_an_error() {
        let db = db();
        // Joining bioentry to dbref qualifies the clashing bioentry_id on
        // both sides; the bare suffix then matches two columns.
        let plan = crate::sql::parse(
            "SELECT * FROM bioentry JOIN dbref ON bioentry.bioentry_id = dbref.bioentry_id \
             WHERE bioentry_id = 1",
        )
        .unwrap();
        let analysis = analyze(&db, &plan);
        assert!(
            analysis.errors().any(|d| d.code == "E103"),
            "{}",
            analysis.render()
        );
    }

    #[test]
    fn large_inputs_trigger_lints() {
        let mut db = db();
        for i in 0..2000i64 {
            db.insert(
                "dbref",
                vec![Value::Int(i), Value::Int(1), Value::text("CONST")],
            )
            .unwrap();
        }
        // Sort with no limit over a large scan.
        let plan = crate::sql::parse("SELECT * FROM dbref ORDER BY dbref_id").unwrap();
        let analysis = analyze(&db, &plan);
        assert!(analysis.diagnostics().iter().any(|d| d.code == "L301"));
        // The same sort under a LIMIT is the fused top-k shape: no lint.
        let plan = crate::sql::parse("SELECT * FROM dbref ORDER BY dbref_id LIMIT 5").unwrap();
        assert!(analyze(&db, &plan).is_clean());
        // Equality with a literal no hash index can serve (float literal).
        let plan = crate::sql::parse("SELECT * FROM dbref WHERE dbref_id = 1.5").unwrap();
        let analysis = analyze(&db, &plan);
        assert!(analysis.diagnostics().iter().any(|d| d.code == "L302"));
        // Near-constant join keys degenerate to a cartesian product.
        let plan =
            crate::sql::parse("SELECT * FROM dbref JOIN dbref2 ON dbref.target = dbref2.target");
        drop(plan); // dbref2 does not exist; build the degenerate join by hand
        let plan = LogicalPlan::scan("dbref").join(
            LogicalPlan::scan("dbref"),
            "target",
            "target",
            "a",
            "b",
        );
        let analysis = analyze(&db, &plan);
        assert!(
            analysis.diagnostics().iter().any(|d| d.code == "L303"),
            "{}",
            analysis.render()
        );
    }

    #[test]
    fn dead_projection_columns_are_linted() {
        let db = db();
        let plan = LogicalPlan::scan("bioentry")
            .project_columns(&["accession", "organism"])
            .project_columns(&["accession"]);
        let analysis = analyze(&db, &plan);
        assert!(
            analysis
                .diagnostics()
                .iter()
                .any(|d| d.code == "L304" && d.message.contains("'organism'")),
            "{}",
            analysis.render()
        );
    }

    #[test]
    fn renderer_produces_caret_context_for_spans() {
        let d = Diagnostic {
            severity: Severity::Error,
            code: "P003",
            message: "expected 'FROM', found 'FORM'".into(),
            path: String::new(),
            span: Some(Span::new(9, 13)),
        };
        assert_eq!(
            d.render_with_source("SELECT * FORM t"),
            "error[P003]: expected 'FROM', found 'FORM'\n  |\n  | SELECT * FORM t\n  |          ^^^^"
        );
    }

    #[test]
    fn to_error_summarizes_error_diagnostics() {
        let db = db();
        let plan = crate::sql::parse("SELECT nope1, nope2 FROM bioentry").unwrap();
        let analysis = analyze(&db, &plan);
        let err = analysis.to_error().unwrap();
        let msg = err.to_string();
        assert!(msg.starts_with("analysis error: error[E102]"), "{msg}");
        assert!(msg.contains("(+1 more)"), "{msg}");
    }

    #[test]
    fn edit_distance_and_suggestions() {
        assert_eq!(edit_distance("accession", "accesion"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(did_you_mean("zzz", ["accession"].into_iter()), "");
    }
}
