//! Integrity constraints of the data dictionary.
//!
//! ALADIN "does not depend on predefined integrity constraints [...] but uses
//! them if they are available" (paper, Sections 1 and 4.1/4.2). The catalog
//! therefore carries an explicit, optional set of constraints per table; the
//! discovery steps consult it first and fall back to data analysis.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A foreign-key constraint: `table.column` references `ref_table.ref_column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing table.
    pub table: String,
    /// Referencing column.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column.
    pub ref_column: String,
}

impl ForeignKey {
    /// Create a foreign key description.
    pub fn new(
        table: impl Into<String>,
        column: impl Into<String>,
        ref_table: impl Into<String>,
        ref_column: impl Into<String>,
    ) -> ForeignKey {
        ForeignKey {
            table: table.into(),
            column: column.into(),
            ref_table: ref_table.into(),
            ref_column: ref_column.into(),
        }
    }
}

impl fmt::Display for ForeignKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{} -> {}.{}",
            self.table, self.column, self.ref_table, self.ref_column
        )
    }
}

/// A declared integrity constraint known to the data dictionary.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Constraint {
    /// The named column of the named table is declared UNIQUE.
    Unique {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// The named column is the table's declared PRIMARY KEY (implies UNIQUE
    /// and NOT NULL).
    PrimaryKey {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// The named column must not contain NULLs.
    NotNull {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// A declared foreign key.
    ForeignKey(ForeignKey),
}

impl Constraint {
    /// Table this constraint applies to (the referencing table for FKs).
    pub fn table(&self) -> &str {
        match self {
            Constraint::Unique { table, .. }
            | Constraint::PrimaryKey { table, .. }
            | Constraint::NotNull { table, .. } => table,
            Constraint::ForeignKey(fk) => &fk.table,
        }
    }

    /// Column this constraint applies to (the referencing column for FKs).
    pub fn column(&self) -> &str {
        match self {
            Constraint::Unique { column, .. }
            | Constraint::PrimaryKey { column, .. }
            | Constraint::NotNull { column, .. } => column,
            Constraint::ForeignKey(fk) => &fk.column,
        }
    }

    /// True if the constraint implies uniqueness of its column.
    pub fn implies_unique(&self) -> bool {
        matches!(
            self,
            Constraint::Unique { .. } | Constraint::PrimaryKey { .. }
        )
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Unique { table, column } => write!(f, "UNIQUE({table}.{column})"),
            Constraint::PrimaryKey { table, column } => {
                write!(f, "PRIMARY KEY({table}.{column})")
            }
            Constraint::NotNull { table, column } => write!(f, "NOT NULL({table}.{column})"),
            Constraint::ForeignKey(fk) => write!(f, "FOREIGN KEY({fk})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let u = Constraint::Unique {
            table: "t".into(),
            column: "c".into(),
        };
        let pk = Constraint::PrimaryKey {
            table: "t".into(),
            column: "id".into(),
        };
        let nn = Constraint::NotNull {
            table: "t".into(),
            column: "c".into(),
        };
        let fk = Constraint::ForeignKey(ForeignKey::new("a", "b_id", "b", "id"));
        assert_eq!(u.table(), "t");
        assert_eq!(pk.column(), "id");
        assert_eq!(nn.column(), "c");
        assert_eq!(fk.table(), "a");
        assert_eq!(fk.column(), "b_id");
    }

    #[test]
    fn uniqueness_implication() {
        let pk = Constraint::PrimaryKey {
            table: "t".into(),
            column: "id".into(),
        };
        let nn = Constraint::NotNull {
            table: "t".into(),
            column: "c".into(),
        };
        assert!(pk.implies_unique());
        assert!(!nn.implies_unique());
    }

    #[test]
    fn display_forms() {
        let fk = Constraint::ForeignKey(ForeignKey::new(
            "dbref",
            "bioentry_id",
            "bioentry",
            "bioentry_id",
        ));
        assert_eq!(
            fk.to_string(),
            "FOREIGN KEY(dbref.bioentry_id -> bioentry.bioentry_id)"
        );
    }
}
