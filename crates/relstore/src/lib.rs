//! # aladin-relstore
//!
//! An in-memory relational substrate for the ALADIN reproduction.
//!
//! The ALADIN architecture (Leser & Naumann, CIDR 2005) assumes that every data
//! source can be brought into a relational representation inside a warehouse
//! RDBMS, and that all discovery steps (unique-attribute detection, accession
//! candidate detection, foreign-key guessing, link discovery, duplicate
//! detection) are expressed as scans, value-set comparisons and joins over that
//! representation, together with a *data dictionary* holding any constraints
//! that are already known.
//!
//! This crate provides exactly those capabilities:
//!
//! * [`Value`] / [`DataType`] — a small dynamic type system (null, integer,
//!   float, text, boolean) with total ordering used by the executor.
//! * [`TableSchema`] / [`ColumnDef`] — schema descriptions.
//! * [`Constraint`] — UNIQUE / PRIMARY KEY / FOREIGN KEY / NOT NULL entries of
//!   the data dictionary. ALADIN *uses constraints if they are present* but
//!   never requires them.
//! * [`Table`] — row-oriented storage with typed columns.
//! * [`Database`] — a catalog of named tables plus the data dictionary.
//! * [`stats`] — per-column profiling (distinct counts, length statistics,
//!   character-class composition, sampling) that backs the paper's heuristics
//!   and the pruning rules of link discovery.
//! * [`expr`], [`plan`] — expressions and logical plans, including an
//!   `EXPLAIN`-style pretty-printer ([`LogicalPlan::explain`]).
//! * [`exec`], [`stream`] — a streaming (pull-based) executor whose operators
//!   pass borrowed rows and short-circuit under `LIMIT`, plus the original
//!   materializing evaluator ([`exec::execute_naive`]) kept as the reference
//!   implementation for property tests and benches.
//! * [`optimize`] — a rule-based optimizer (predicate pushdown, projection
//!   pruning, limit pushdown, index-scan rewriting, join build-side
//!   selection, proven-empty pruning) producing observationally equivalent
//!   plans.
//! * [`analyze`] — a static analysis pass between plan construction and
//!   optimization: typed plan validation against the catalog,
//!   satisfiability reasoning over conjunctive predicates, and plan lints,
//!   all reported as structured [`analyze::Diagnostic`]s.
//! * [`sql`] — a deliberately small SQL dialect (`[EXPLAIN] SELECT ... FROM
//!   ... JOIN ... WHERE ... GROUP BY ... ORDER BY ... LIMIT`) so that the
//!   "structured queries" access mode of ALADIN can be exercised end to end.
//! * [`wal`], [`persist`] — durability: a CRC32-checksummed, fsync'd
//!   write-ahead log of committed mutation batches plus atomic checksummed
//!   snapshots, combined by [`DurableDatabase`] with cold-start recovery
//!   (newest valid snapshot + WAL tail replay, truncating torn records).
//! * [`index`] — hash indexes on single columns, used by the access engine,
//!   by explicit-link discovery, and by the executor's `IndexScan` nodes via
//!   the catalog's lazily built index cache ([`Database::hash_index`]).
//!
//! The crate is self-contained and has no knowledge of ALADIN's heuristics;
//! those live in `aladin-core`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod catalog;
pub mod constraint;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod optimize;
pub mod persist;
pub mod plan;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod stream;
pub mod table;
pub mod types;
pub mod value;
pub mod wal;

pub use catalog::Database;
pub use constraint::{Constraint, ForeignKey};
pub use error::{RelError, RelResult};
pub use expr::Expr;
pub use persist::{DurableDatabase, Mutation, RecoveryReport};
pub use plan::LogicalPlan;
pub use schema::{ColumnDef, TableSchema};
pub use table::{Row, Table};
pub use types::DataType;
pub use value::Value;
