//! Error type shared across the relational substrate.

use std::fmt;

/// Errors produced by the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A table was addressed that does not exist in the catalog.
    UnknownTable(String),
    /// A column was addressed that does not exist in its table.
    UnknownColumn(String),
    /// A row did not match the arity or types of the table schema.
    SchemaMismatch(String),
    /// A constraint (UNIQUE, PRIMARY KEY, FOREIGN KEY, NOT NULL) was violated.
    ConstraintViolation(String),
    /// An expression could not be evaluated (type error, unknown column, ...).
    Eval(String),
    /// A SQL string could not be parsed.
    Parse(String),
    /// A plan could not be executed.
    Exec(String),
    /// A duplicate object (table, index, constraint) was created.
    AlreadyExists(String),
    /// The static analyzer ([`crate::analyze`]) rejected a plan before
    /// execution; the payload is the rendered error diagnostic(s).
    Analysis(String),
    /// A durability operation failed: WAL append/fsync, snapshot read/write,
    /// or cold-start recovery ([`crate::wal`], [`crate::persist`]). The
    /// payload is the rendered cause; the variant stays `Clone + Eq` like the
    /// rest of the enum, so I/O errors are carried as their message.
    Durability(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            RelError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            RelError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            RelError::ConstraintViolation(m) => write!(f, "constraint violation: {m}"),
            RelError::Eval(m) => write!(f, "evaluation error: {m}"),
            RelError::Parse(m) => write!(f, "parse error: {m}"),
            RelError::Exec(m) => write!(f, "execution error: {m}"),
            RelError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            RelError::Analysis(m) => write!(f, "analysis error: {m}"),
            RelError::Durability(m) => write!(f, "durability error: {m}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Convenience result alias used throughout the crate.
pub type RelResult<T> = Result<T, RelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            RelError::UnknownTable("t".into()).to_string(),
            "unknown table: t"
        );
        assert_eq!(
            RelError::UnknownColumn("c".into()).to_string(),
            "unknown column: c"
        );
        assert_eq!(
            RelError::Parse("bad".into()).to_string(),
            "parse error: bad"
        );
        assert_eq!(
            RelError::ConstraintViolation("dup".into()).to_string(),
            "constraint violation: dup"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&RelError::Exec("x".into()));
    }
}
