//! The catalog: named tables plus the data dictionary.

use crate::constraint::{Constraint, ForeignKey};
use crate::error::{RelError, RelResult};
use crate::index::HashIndex;
use crate::schema::TableSchema;
use crate::stats::{profile_column, ColumnStats};
use crate::table::{Row, Table};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lazily built access paths over the catalog's tables: hash indexes and
/// column statistics, keyed by lowercase `(table, column)`. Entries are built
/// on first use behind a shared reference and dropped whenever the owning
/// table is mutably accessed, so a stale index can never be served.
#[derive(Debug, Default)]
struct AccessPaths {
    indexes: RwLock<HashMap<(String, String), Arc<HashIndex>>>,
    stats: RwLock<HashMap<(String, String), Arc<ColumnStats>>>,
}

/// Acquire a cache lock for reading, recovering from poisoning first. A
/// panic while the write guard was held may have left a half-built entry in
/// the map, so recovery discards the whole map — it only holds derived data
/// that rebuilds on demand — and clears the poison flag, instead of
/// cascading the original panic into every later access.
fn cache_read<K, V>(lock: &RwLock<HashMap<K, V>>) -> RwLockReadGuard<'_, HashMap<K, V>> {
    if lock.is_poisoned() {
        lock.clear_poison();
        lock.write().unwrap_or_else(PoisonError::into_inner).clear();
    }
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a cache lock for writing, with the same discard-and-clear
/// poisoning recovery as [`cache_read`].
fn cache_write<K, V>(lock: &RwLock<HashMap<K, V>>) -> RwLockWriteGuard<'_, HashMap<K, V>> {
    let poisoned = lock.is_poisoned();
    lock.clear_poison();
    let mut guard = lock.write().unwrap_or_else(PoisonError::into_inner);
    if poisoned {
        guard.clear();
    }
    guard
}

/// Exclusive access to a cache map through `&mut`, with the same
/// discard-and-clear poisoning recovery as [`cache_read`].
fn cache_get_mut<K, V>(lock: &mut RwLock<HashMap<K, V>>) -> &mut HashMap<K, V> {
    let poisoned = lock.is_poisoned();
    lock.clear_poison();
    let map = lock.get_mut().unwrap_or_else(PoisonError::into_inner);
    if poisoned {
        map.clear();
    }
    map
}

impl Clone for AccessPaths {
    fn clone(&self) -> AccessPaths {
        AccessPaths {
            indexes: RwLock::new(cache_read(&self.indexes).clone()),
            stats: RwLock::new(cache_read(&self.stats).clone()),
        }
    }
}

/// A database: an ordered collection of named tables and their declared
/// constraints (the *data dictionary*).
///
/// In the ALADIN architecture each imported data source becomes one such
/// database inside the warehouse; the warehouse itself is a collection of
/// `Database` values managed by `aladin-core`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    name: String,
    tables: BTreeMap<String, Table>,
    constraints: Vec<Constraint>,
    #[serde(skip)]
    access: AccessPaths,
}

impl Database {
    /// Create an empty database with the given name.
    pub fn new(name: impl Into<String>) -> Database {
        Database {
            name: name.into(),
            tables: BTreeMap::new(),
            constraints: Vec::new(),
            access: AccessPaths::default(),
        }
    }

    /// Database (data source) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::row_count).sum()
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Iterate over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Create a table, rejecting duplicates (case-insensitive via key
    /// normalization to lowercase).
    pub fn create_table(&mut self, name: impl Into<String>, schema: TableSchema) -> RelResult<()> {
        let name = name.into();
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(RelError::AlreadyExists(format!("table '{name}'")));
        }
        self.tables.insert(key, Table::new(name, schema));
        Ok(())
    }

    /// Add an already-built table, rejecting duplicates.
    pub fn add_table(&mut self, table: Table) -> RelResult<()> {
        let key = table.name().to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(RelError::AlreadyExists(format!("table '{}'", table.name())));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    /// Remove a table and any constraints that mention it. Returns the table.
    pub fn drop_table(&mut self, name: &str) -> RelResult<Table> {
        self.invalidate_access_paths(name);
        let key = name.to_ascii_lowercase();
        let table = self
            .tables
            .remove(&key)
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))?;
        self.constraints.retain(|c| match c {
            Constraint::ForeignKey(fk) => {
                !fk.table.eq_ignore_ascii_case(name) && !fk.ref_table.eq_ignore_ascii_case(name)
            }
            other => !other.table().eq_ignore_ascii_case(name),
        });
        Ok(table)
    }

    /// Fetch a table by case-insensitive name.
    pub fn table(&self, name: &str) -> RelResult<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    /// Fetch a table mutably by case-insensitive name. Any cached access
    /// paths (hash indexes, column statistics) over the table are dropped:
    /// the caller may mutate rows through the returned reference.
    pub fn table_mut(&mut self, name: &str) -> RelResult<&mut Table> {
        self.invalidate_access_paths(name);
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    /// Drop cached access paths for one table after a mutable access.
    fn invalidate_access_paths(&mut self, table: &str) {
        let key = table.to_ascii_lowercase();
        cache_get_mut(&mut self.access.indexes).retain(|(t, _), _| t != &key);
        cache_get_mut(&mut self.access.stats).retain(|(t, _), _| t != &key);
    }

    /// A shared hash index over `table.column`, built on first use and cached
    /// until the table is next mutably accessed. This is the access path the
    /// executor's `IndexScan` node probes; repeated point lookups amortize
    /// the single build scan to `O(1)` per query.
    pub fn hash_index(&self, table: &str, column: &str) -> RelResult<Arc<HashIndex>> {
        let t = self.table(table)?;
        let key = (table.to_ascii_lowercase(), column.to_ascii_lowercase());
        if let Some(idx) = cache_read(&self.access.indexes).get(&key) {
            return Ok(Arc::clone(idx));
        }
        let built = Arc::new(HashIndex::build(t, column)?);
        cache_write(&self.access.indexes).insert(key, Arc::clone(&built));
        Ok(built)
    }

    /// Shared column statistics for `table.column`, profiled on first use and
    /// cached until the table is next mutably accessed. The paper notes that
    /// "these statistics need to be computed only once for each data source
    /// and can then be reused"; the rule-based optimizer reuses them for
    /// cardinality estimates.
    pub fn column_stats(&self, table: &str, column: &str) -> RelResult<Arc<ColumnStats>> {
        let t = self.table(table)?;
        let key = (table.to_ascii_lowercase(), column.to_ascii_lowercase());
        if let Some(s) = cache_read(&self.access.stats).get(&key) {
            return Ok(Arc::clone(s));
        }
        let built = Arc::new(profile_column(t, column, 0)?);
        cache_write(&self.access.stats).insert(key, Arc::clone(&built));
        Ok(built)
    }

    /// Insert a row into the named table.
    pub fn insert(&mut self, table: &str, row: Row) -> RelResult<()> {
        self.table_mut(table)?.insert(row)
    }

    /// Insert many rows into the named table; returns the number inserted.
    pub fn insert_all(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> RelResult<usize> {
        self.table_mut(table)?.insert_all(rows)
    }

    /// Declare a constraint. The referenced table(s) and column(s) must exist.
    /// Declaring the same constraint twice is a silent no-op (imports often
    /// replay dictionary dumps).
    pub fn add_constraint(&mut self, constraint: Constraint) -> RelResult<()> {
        self.validate_constraint(&constraint)?;
        if !self.constraints.contains(&constraint) {
            self.constraints.push(constraint);
        }
        Ok(())
    }

    fn validate_constraint(&self, constraint: &Constraint) -> RelResult<()> {
        let check = |table: &str, column: &str| -> RelResult<()> {
            let t = self.table(table)?;
            t.schema().require(column).map(|_| ())
        };
        match constraint {
            Constraint::Unique { table, column }
            | Constraint::PrimaryKey { table, column }
            | Constraint::NotNull { table, column } => check(table, column),
            Constraint::ForeignKey(fk) => {
                check(&fk.table, &fk.column)?;
                check(&fk.ref_table, &fk.ref_column)
            }
        }
    }

    /// All declared constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Declared constraints for a single table (FKs are listed under their
    /// referencing table).
    pub fn constraints_for(&self, table: &str) -> Vec<&Constraint> {
        self.constraints
            .iter()
            .filter(|c| c.table().eq_ignore_ascii_case(table))
            .collect()
    }

    /// Declared foreign keys (referencing table, column, referenced table,
    /// column) across the whole database.
    pub fn foreign_keys(&self) -> Vec<&ForeignKey> {
        self.constraints
            .iter()
            .filter_map(|c| match c {
                Constraint::ForeignKey(fk) => Some(fk),
                _ => None,
            })
            .collect()
    }

    /// Whether a column is declared unique (UNIQUE or PRIMARY KEY) in the data
    /// dictionary.
    pub fn is_declared_unique(&self, table: &str, column: &str) -> bool {
        self.constraints.iter().any(|c| {
            c.implies_unique()
                && c.table().eq_ignore_ascii_case(table)
                && c.column().eq_ignore_ascii_case(column)
        })
    }

    /// Verify the data against the declared constraints, returning a list of
    /// human-readable violations (empty = consistent). This powers tests and
    /// the importers' self-checks; it is intentionally a full scan.
    pub fn check_consistency(&self) -> RelResult<Vec<String>> {
        let mut violations = Vec::new();
        for c in &self.constraints {
            match c {
                Constraint::Unique { table, column } | Constraint::PrimaryKey { table, column } => {
                    let t = self.table(table)?;
                    if !t.is_empty() && !t.column_is_unique(column)? {
                        violations.push(format!("{c} violated: duplicate values"));
                    }
                    if matches!(c, Constraint::PrimaryKey { .. }) {
                        let idx = t.column_index(column)?;
                        if t.rows().iter().any(|r| r[idx].is_null()) {
                            violations.push(format!("{c} violated: NULL key"));
                        }
                    }
                }
                Constraint::NotNull { table, column } => {
                    let t = self.table(table)?;
                    let idx = t.column_index(column)?;
                    if t.rows().iter().any(|r| r[idx].is_null()) {
                        violations.push(format!("{c} violated: NULL value"));
                    }
                }
                Constraint::ForeignKey(fk) => {
                    let child = self.table(&fk.table)?;
                    let parent = self.table(&fk.ref_table)?;
                    let parent_vals = parent.distinct_values(&fk.ref_column)?;
                    let idx = child.column_index(&fk.column)?;
                    for row in child.rows() {
                        let v = &row[idx];
                        if !v.is_null() && !parent_vals.contains(v) {
                            violations.push(format!("{c} violated: dangling value '{v}'"));
                            break;
                        }
                    }
                }
            }
        }
        Ok(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new("biosql");
        db.create_table(
            "bioentry",
            TableSchema::of(vec![
                ColumnDef::int("bioentry_id"),
                ColumnDef::text("accession"),
            ]),
        )
        .unwrap();
        db.create_table(
            "dbref",
            TableSchema::of(vec![
                ColumnDef::int("dbref_id"),
                ColumnDef::int("bioentry_id"),
                ColumnDef::text("accession"),
            ]),
        )
        .unwrap();
        db.insert("bioentry", vec![Value::Int(1), Value::text("P12345")])
            .unwrap();
        db.insert("bioentry", vec![Value::Int(2), Value::text("P67890")])
            .unwrap();
        db.insert(
            "dbref",
            vec![Value::Int(10), Value::Int(1), Value::text("PDB:1ABC")],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let db = db();
        assert!(db.table("BIOENTRY").is_ok());
        assert!(db.table("BioEntry").is_ok());
        assert!(matches!(
            db.table("missing"),
            Err(RelError::UnknownTable(_))
        ));
        assert_eq!(db.table_count(), 2);
        assert_eq!(db.total_rows(), 3);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        let err = db
            .create_table("BioEntry", TableSchema::of(vec![ColumnDef::int("x")]))
            .unwrap_err();
        assert!(matches!(err, RelError::AlreadyExists(_)));
    }

    #[test]
    fn constraints_validated_against_schema() {
        let mut db = db();
        assert!(db
            .add_constraint(Constraint::PrimaryKey {
                table: "bioentry".into(),
                column: "bioentry_id".into()
            })
            .is_ok());
        assert!(db
            .add_constraint(Constraint::Unique {
                table: "bioentry".into(),
                column: "no_such".into()
            })
            .is_err());
        assert!(db
            .add_constraint(Constraint::ForeignKey(ForeignKey::new(
                "dbref",
                "bioentry_id",
                "bioentry",
                "bioentry_id"
            )))
            .is_ok());
        assert_eq!(db.foreign_keys().len(), 1);
        assert!(db.is_declared_unique("bioentry", "bioentry_id"));
        assert!(!db.is_declared_unique("dbref", "accession"));
    }

    #[test]
    fn duplicate_constraint_is_noop() {
        let mut db = db();
        let c = Constraint::Unique {
            table: "bioentry".into(),
            column: "accession".into(),
        };
        db.add_constraint(c.clone()).unwrap();
        db.add_constraint(c).unwrap();
        assert_eq!(db.constraints().len(), 1);
    }

    #[test]
    fn consistency_check_detects_violations() {
        let mut db = db();
        db.add_constraint(Constraint::PrimaryKey {
            table: "bioentry".into(),
            column: "bioentry_id".into(),
        })
        .unwrap();
        db.add_constraint(Constraint::ForeignKey(ForeignKey::new(
            "dbref",
            "bioentry_id",
            "bioentry",
            "bioentry_id",
        )))
        .unwrap();
        assert!(db.check_consistency().unwrap().is_empty());

        db.insert("bioentry", vec![Value::Int(1), Value::text("DUP")])
            .unwrap();
        db.insert(
            "dbref",
            vec![Value::Int(11), Value::Int(99), Value::text("X")],
        )
        .unwrap();
        let violations = db.check_consistency().unwrap();
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().any(|v| v.contains("duplicate")));
        assert!(violations.iter().any(|v| v.contains("dangling")));
    }

    #[test]
    fn drop_table_removes_constraints() {
        let mut db = db();
        db.add_constraint(Constraint::ForeignKey(ForeignKey::new(
            "dbref",
            "bioentry_id",
            "bioentry",
            "bioentry_id",
        )))
        .unwrap();
        db.drop_table("bioentry").unwrap();
        assert!(db.constraints().is_empty());
        assert!(db.table("bioentry").is_err());
        assert!(db.drop_table("bioentry").is_err());
    }

    #[test]
    fn hash_index_is_cached_and_invalidated_on_mutation() {
        let mut db = db();
        let idx = db.hash_index("bioentry", "accession").unwrap();
        assert_eq!(idx.lookup("P12345"), &[0]);
        // Cached: the same Arc is returned.
        let again = db.hash_index("BIOENTRY", "ACCESSION").unwrap();
        assert!(Arc::ptr_eq(&idx, &again));
        // Mutation drops the cache; the rebuilt index sees the new row.
        db.insert("bioentry", vec![Value::Int(3), Value::text("P99999")])
            .unwrap();
        let rebuilt = db.hash_index("bioentry", "accession").unwrap();
        assert!(!Arc::ptr_eq(&idx, &rebuilt));
        assert_eq!(rebuilt.lookup("P99999"), &[2]);
        // Unknown tables and columns are reported.
        assert!(db.hash_index("missing", "accession").is_err());
        assert!(db.hash_index("bioentry", "missing").is_err());
    }

    #[test]
    fn column_stats_are_cached_and_invalidated_on_mutation() {
        let mut db = db();
        let s = db.column_stats("bioentry", "accession").unwrap();
        assert_eq!(s.row_count, 2);
        let again = db.column_stats("bioentry", "accession").unwrap();
        assert!(Arc::ptr_eq(&s, &again));
        db.insert("bioentry", vec![Value::Int(3), Value::text("P99999")])
            .unwrap();
        assert_eq!(
            db.column_stats("bioentry", "accession").unwrap().row_count,
            3
        );
        // Mutating one table leaves other tables' caches intact.
        let dbref_stats = db.column_stats("dbref", "accession").unwrap();
        db.insert("bioentry", vec![Value::Int(4), Value::text("Q00000")])
            .unwrap();
        let dbref_again = db.column_stats("dbref", "accession").unwrap();
        assert!(Arc::ptr_eq(&dbref_stats, &dbref_again));
    }

    /// Poison a cache lock the way a real failure would: a thread panics
    /// while it holds the write guard, mid-way through populating the map.
    fn poison_mid_construction<K, V>(lock: &RwLock<HashMap<K, V>>, key: K, value: V)
    where
        K: Send + Sync + std::hash::Hash + Eq,
        V: Send + Sync,
    {
        let joined = std::thread::scope(|s| {
            s.spawn(|| {
                let mut guard = lock.write().unwrap();
                guard.insert(key, value);
                panic!("injected: panic while the cache write guard is held");
            })
            .join()
        });
        assert!(joined.is_err());
        assert!(lock.is_poisoned());
    }

    #[test]
    fn poisoned_index_cache_is_discarded_and_rebuilt() {
        let db = db();
        let before = db.hash_index("bioentry", "accession").unwrap();
        let half_built =
            Arc::new(HashIndex::build(db.table("dbref").unwrap(), "accession").unwrap());
        poison_mid_construction(
            &db.access.indexes,
            ("dbref".to_string(), "accession".to_string()),
            half_built,
        );
        // Recovery discards the whole suspect map — including the entry the
        // panicking builder left behind — and rebuilds on demand.
        let rebuilt = db.hash_index("bioentry", "accession").unwrap();
        assert!(!Arc::ptr_eq(&before, &rebuilt));
        assert_eq!(rebuilt.lookup("P12345"), &[0]);
        assert!(!db.access.indexes.is_poisoned());
        // Subsequent lookups cache normally again.
        let again = db.hash_index("bioentry", "accession").unwrap();
        assert!(Arc::ptr_eq(&rebuilt, &again));
    }

    #[test]
    fn poisoned_stats_cache_is_discarded_and_rebuilt() {
        let db = db();
        let before = db.column_stats("bioentry", "accession").unwrap();
        let half_built =
            Arc::new(profile_column(db.table("dbref").unwrap(), "accession", 0).unwrap());
        poison_mid_construction(
            &db.access.stats,
            ("dbref".to_string(), "accession".to_string()),
            half_built,
        );
        let rebuilt = db.column_stats("bioentry", "accession").unwrap();
        assert!(!Arc::ptr_eq(&before, &rebuilt));
        assert_eq!(rebuilt.row_count, 2);
        assert!(!db.access.stats.is_poisoned());
    }

    #[test]
    fn poisoned_caches_survive_clone_and_mutation() {
        let mut db = db();
        db.hash_index("bioentry", "accession").unwrap();
        let half_built =
            Arc::new(HashIndex::build(db.table("dbref").unwrap(), "accession").unwrap());
        poison_mid_construction(
            &db.access.indexes,
            ("dbref".to_string(), "accession".to_string()),
            half_built,
        );
        // Clone starts from an empty (recovered) cache, not a suspect one.
        let cloned = db.clone();
        assert!(!cloned.access.indexes.is_poisoned());
        assert_eq!(
            cloned
                .hash_index("bioentry", "accession")
                .unwrap()
                .lookup("P67890"),
            &[1]
        );
        // And `&mut` invalidation paths recover instead of panicking.
        db.insert("bioentry", vec![Value::Int(3), Value::text("P99999")])
            .unwrap();
        assert_eq!(
            db.hash_index("bioentry", "accession")
                .unwrap()
                .lookup("P99999"),
            &[2]
        );
    }

    #[test]
    fn constraints_for_filters_by_table() {
        let mut db = db();
        db.add_constraint(Constraint::Unique {
            table: "bioentry".into(),
            column: "accession".into(),
        })
        .unwrap();
        db.add_constraint(Constraint::NotNull {
            table: "dbref".into(),
            column: "accession".into(),
        })
        .unwrap();
        assert_eq!(db.constraints_for("bioentry").len(), 1);
        assert_eq!(db.constraints_for("dbref").len(), 1);
        assert_eq!(db.constraints_for("unknown").len(), 0);
    }
}
