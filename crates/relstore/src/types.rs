//! Data types of the relational substrate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dynamic data types supported by the substrate.
///
/// Life-science sources imported by generic parsers are overwhelmingly text
/// plus surrogate integer keys, so the type lattice is intentionally small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 text of arbitrary length.
    Text,
    /// Boolean.
    Boolean,
}

impl DataType {
    /// Whether a value of `other` can be stored in a column of `self` without
    /// loss that matters to the discovery heuristics (integers widen to float,
    /// anything can be rendered as text).
    pub fn accepts(self, other: DataType) -> bool {
        match (self, other) {
            (a, b) if a == b => true,
            (DataType::Float, DataType::Integer) => true,
            (DataType::Text, _) => true,
            _ => false,
        }
    }

    /// The most specific type that accepts both inputs; used by schema
    /// inference in the importers.
    pub fn unify(self, other: DataType) -> DataType {
        if self == other || self.accepts(other) {
            self
        } else if other.accepts(self) {
            other
        } else if matches!(
            (self, other),
            (DataType::Integer, DataType::Float) | (DataType::Float, DataType::Integer)
        ) {
            DataType::Float
        } else {
            DataType::Text
        }
    }

    /// True for numeric types (used by the "purely numeric attribute" pruning
    /// rule in link discovery).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Integer | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Integer => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Boolean => "BOOLEAN",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_is_reflexive() {
        for t in [
            DataType::Integer,
            DataType::Float,
            DataType::Text,
            DataType::Boolean,
        ] {
            assert!(t.accepts(t));
        }
    }

    #[test]
    fn float_accepts_integer_but_not_vice_versa() {
        assert!(DataType::Float.accepts(DataType::Integer));
        assert!(!DataType::Integer.accepts(DataType::Float));
    }

    #[test]
    fn text_accepts_everything() {
        for t in [
            DataType::Integer,
            DataType::Float,
            DataType::Text,
            DataType::Boolean,
        ] {
            assert!(DataType::Text.accepts(t));
        }
    }

    #[test]
    fn unify_numeric_pairs_to_float() {
        assert_eq!(DataType::Integer.unify(DataType::Float), DataType::Float);
        assert_eq!(DataType::Float.unify(DataType::Integer), DataType::Float);
    }

    #[test]
    fn unify_disparate_falls_back_to_text() {
        assert_eq!(DataType::Boolean.unify(DataType::Integer), DataType::Text);
    }

    #[test]
    fn numeric_predicate() {
        assert!(DataType::Integer.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Text.is_numeric());
        assert!(!DataType::Boolean.is_numeric());
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Text.to_string(), "TEXT");
        assert_eq!(DataType::Integer.to_string(), "INTEGER");
    }
}
