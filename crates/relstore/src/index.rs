//! Hash indexes on single columns.
//!
//! ALADIN's access engine and explicit-link discovery repeatedly look up
//! accession values in the unique columns of primary relations of other
//! sources. A simple hash index over the rendered value avoids rescanning the
//! column for every probe and, by indexing the *rendered* form, bridges the
//! representation differences between parsers (integer vs. textual keys).

use crate::error::RelResult;
use crate::table::Table;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A hash index mapping rendered column values to row positions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HashIndex {
    table: String,
    column: String,
    map: HashMap<String, Vec<usize>>,
}

impl HashIndex {
    /// Build an index over `table.column`. NULLs are not indexed.
    pub fn build(table: &Table, column: &str) -> RelResult<HashIndex> {
        let idx = table.column_index(column)?;
        let mut map: HashMap<String, Vec<usize>> = HashMap::with_capacity(table.row_count());
        for (pos, row) in table.rows().iter().enumerate() {
            let v = &row[idx];
            if v.is_null() {
                continue;
            }
            map.entry(v.render()).or_default().push(pos);
        }
        Ok(HashIndex {
            table: table.name().to_string(),
            column: column.to_string(),
            map,
        })
    }

    /// Indexed table name.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Indexed column name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Number of distinct indexed keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Row positions holding the given rendered value.
    pub fn lookup(&self, rendered: &str) -> &[usize] {
        self.map.get(rendered).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row positions holding a [`Value`], probing by its rendered form.
    /// Text values (the dominant accession case) and NULLs probe without
    /// allocating a fresh `String`; NULLs are never indexed, so they always
    /// miss. Probe loops should prefer this over `lookup(&v.render())`.
    pub fn lookup_value(&self, value: &Value) -> &[usize] {
        match value {
            Value::Null => &[],
            Value::Text(s) => self.lookup(s),
            other => self.lookup(&other.render()),
        }
    }

    /// Whether the value occurs at least once.
    pub fn contains(&self, rendered: &str) -> bool {
        self.map.contains_key(rendered)
    }

    /// Iterate over all keys.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::Value;

    fn table() -> Table {
        let schema = TableSchema::of(vec![ColumnDef::int("id"), ColumnDef::text("acc")]);
        let mut t = Table::new("t", schema);
        t.insert(vec![Value::Int(1), Value::text("P1")]).unwrap();
        t.insert(vec![Value::Int(2), Value::text("P2")]).unwrap();
        t.insert(vec![Value::Int(3), Value::text("P1")]).unwrap();
        t.insert(vec![Value::Int(4), Value::Null]).unwrap();
        t
    }

    #[test]
    fn lookup_returns_all_positions() {
        let t = table();
        let idx = HashIndex::build(&t, "acc").unwrap();
        assert_eq!(idx.lookup("P1"), &[0, 2]);
        assert_eq!(idx.lookup("P2"), &[1]);
        assert!(idx.lookup("missing").is_empty());
        assert_eq!(idx.key_count(), 2);
        assert!(idx.contains("P2"));
        assert_eq!(idx.table(), "t");
        assert_eq!(idx.column(), "acc");
    }

    #[test]
    fn nulls_are_not_indexed() {
        let t = table();
        let idx = HashIndex::build(&t, "acc").unwrap();
        assert!(!idx.contains(""));
    }

    #[test]
    fn lookup_value_probes_by_rendered_form() {
        let t = table();
        let acc = HashIndex::build(&t, "acc").unwrap();
        assert_eq!(acc.lookup_value(&Value::text("P1")), &[0, 2]);
        assert!(acc.lookup_value(&Value::Null).is_empty());
        let id = HashIndex::build(&t, "id").unwrap();
        assert_eq!(id.lookup_value(&Value::Int(3)), &[2]);
        assert_eq!(id.lookup_value(&Value::text("3")), &[2]);
    }

    #[test]
    fn integer_keys_are_indexed_by_rendered_form() {
        let t = table();
        let idx = HashIndex::build(&t, "id").unwrap();
        assert_eq!(idx.lookup("3"), &[2]);
        assert_eq!(idx.key_count(), 4);
    }

    #[test]
    fn unknown_column_errors() {
        let t = table();
        assert!(HashIndex::build(&t, "nope").is_err());
    }
}
