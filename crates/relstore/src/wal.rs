//! Append-only write-ahead log with checksummed, length-prefixed records.
//!
//! Every committed mutation batch of a [`crate::persist::DurableDatabase`]
//! becomes one WAL record, fsync'd before the commit is acknowledged, so a
//! crash can only ever lose the *uncommitted* tail. The format is built for
//! recovery under damage, not for refusing to start:
//!
//! ```text
//! file   := magic("ALADWAL1") record*
//! record := len:u32  crc:u32  seq:u64  payload[len]      (little-endian)
//! ```
//!
//! `crc` is CRC32 (IEEE) over `seq || payload`, so a bit flip anywhere in a
//! record is detected; `seq` is a strictly increasing commit sequence number,
//! so duplicated records are skipped and reordered/missing records stop the
//! replay at the last provably consistent prefix. [`replay`] never panics and
//! never errors on damage: it reports the valid prefix (records + byte
//! length) plus the reason the tail was cut, and recovery physically
//! truncates the file there ([`Wal::recover`]).
//!
//! The [`Wal`] write handle fsyncs on every append by default
//! ([`Wal::set_sync`] trades durability for throughput in benchmarks) and
//! supports injected fsync failures ([`Wal::inject_sync_failures`]) so the
//! fail-fsync path — commit not acknowledged, memory and disk both without
//! the batch — is testable without a real disk fault.

use crate::error::{RelError, RelResult};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// First 8 bytes of every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"ALADWAL1";

/// Bytes of the per-record header (`len + crc + seq`).
pub const FRAME_HEADER_LEN: usize = 16;

/// Upper bound on a single record payload; anything larger in a length
/// prefix is treated as corruption rather than attempted as an allocation.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 30;

// CRC32 (IEEE 802.3), table-driven; computed at compile time so the crate
// needs no checksum dependency.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFF_u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn io_err(context: &str, e: std::io::Error) -> RelError {
    RelError::Durability(format!("{context}: {e}"))
}

fn record_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut bytes = Vec::with_capacity(8 + payload.len());
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(payload);
    crc32(&bytes)
}

/// Encode one record frame (header + payload) for sequence number `seq`.
pub fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&record_crc(seq, payload).to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// One committed record recovered from a WAL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Commit sequence number.
    pub seq: u64,
    /// Byte offset of this record's frame in the file.
    pub offset: u64,
    /// The record payload (an encoded mutation batch).
    pub payload: Vec<u8>,
}

/// Outcome of replaying a WAL file: the valid prefix and how it ended.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Records of the valid prefix with `seq > start_seq`, in commit order.
    pub records: Vec<WalRecord>,
    /// Highest applied sequence number (`start_seq` if nothing applied).
    pub last_seq: u64,
    /// Byte length of the valid prefix; recovery truncates the file here.
    pub valid_len: u64,
    /// Why replay stopped before the end of the file, if it did: a torn
    /// frame, a checksum mismatch, or a sequence gap.
    pub truncated: Option<String>,
    /// Well-formed records skipped because their sequence number was already
    /// applied (duplicated frames).
    pub duplicates_skipped: usize,
}

/// Replay a WAL file, returning the longest consistent prefix of records
/// with `seq > start_seq`. Damage (torn tail, checksum mismatch, sequence
/// gap) stops the replay and is reported in [`WalReplay::truncated`] — it is
/// never an error, and a missing file is simply an empty replay.
pub fn replay(path: &Path, start_seq: u64) -> RelResult<WalReplay> {
    let mut out = WalReplay {
        last_seq: start_seq,
        ..WalReplay::default()
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err("reading WAL", e)),
    };
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        out.truncated = Some("missing or damaged WAL header".to_string());
        return Ok(out);
    }
    let mut pos = WAL_MAGIC.len();
    out.valid_len = pos as u64;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER_LEN {
            out.truncated = Some(format!("torn frame header ({remaining} trailing bytes)"));
            break;
        }
        let word = |at: usize| -> u32 {
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
        };
        let len = word(pos);
        let crc = word(pos + 4);
        let seq = u64::from_le_bytes(
            bytes[pos + 8..pos + 16]
                .try_into()
                .unwrap_or_else(|_| unreachable!("slice is 8 bytes")),
        );
        if len > MAX_PAYLOAD_LEN {
            out.truncated = Some(format!("implausible record length {len}"));
            break;
        }
        let len = len as usize;
        if remaining < FRAME_HEADER_LEN + len {
            out.truncated = Some(format!(
                "torn record payload (need {len} bytes, {} remain)",
                remaining - FRAME_HEADER_LEN
            ));
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len];
        if record_crc(seq, payload) != crc {
            out.truncated = Some(format!("checksum mismatch on record seq {seq}"));
            break;
        }
        if seq <= out.last_seq {
            // A duplicated frame: already applied, skip but keep the prefix.
            out.duplicates_skipped += 1;
        } else if seq == out.last_seq + 1 {
            out.records.push(WalRecord {
                seq,
                offset: pos as u64,
                payload: payload.to_vec(),
            });
            out.last_seq = seq;
        } else {
            // A gap: records were lost or reordered; nothing after this
            // point is provably consistent.
            out.truncated = Some(format!(
                "sequence gap (expected {}, found {seq})",
                out.last_seq + 1
            ));
            break;
        }
        pos += FRAME_HEADER_LEN + len;
        out.valid_len = pos as u64;
    }
    Ok(out)
}

/// Byte spans `(offset, length)` of the well-formed frames of a WAL file, in
/// file order and ignoring sequence semantics — the handle fault injectors
/// use to cut, flip, duplicate and reorder records ([`crate::persist`]'s
/// test harness and `aladin-datagen`'s disk-fault injectors).
pub fn frame_spans(path: &Path) -> RelResult<Vec<(u64, u64)>> {
    let bytes = std::fs::read(path).map_err(|e| io_err("reading WAL", e))?;
    let mut spans = Vec::new();
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Ok(spans);
    }
    let mut pos = WAL_MAGIC.len();
    while pos + FRAME_HEADER_LEN <= bytes.len() {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        if len > MAX_PAYLOAD_LEN {
            break;
        }
        let total = FRAME_HEADER_LEN + len as usize;
        if pos + total > bytes.len() {
            break;
        }
        spans.push((pos as u64, total as u64));
        pos += total;
    }
    Ok(spans)
}

/// How a [`Wal`] ended up positioned after [`Wal::recover`]: the replay
/// outcome plus the open write handle.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    len: u64,
    sync_on_commit: bool,
    fail_syncs: u32,
}

impl Wal {
    /// Create a fresh WAL at `path` (truncating anything there), whose first
    /// record will carry sequence number `start_seq + 1`.
    pub fn create(path: &Path, start_seq: u64) -> RelResult<Wal> {
        let mut file = File::create(path).map_err(|e| io_err("creating WAL", e))?;
        file.write_all(&WAL_MAGIC)
            .map_err(|e| io_err("writing WAL header", e))?;
        file.sync_data().map_err(|e| io_err("syncing WAL", e))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            next_seq: start_seq + 1,
            len: WAL_MAGIC.len() as u64,
            sync_on_commit: true,
            fail_syncs: 0,
        })
    }

    /// Cold-start recovery of a WAL file: replay the longest consistent
    /// prefix of records with `seq > start_seq`, physically truncate the file
    /// at the first torn/corrupt record (instead of refusing to start), and
    /// return the replay together with a write handle positioned to append
    /// the next commit. A missing or headerless file is (re)initialized
    /// empty.
    pub fn recover(path: &Path, start_seq: u64) -> RelResult<(WalReplay, Wal)> {
        let replay = replay(path, start_seq)?;
        if replay.valid_len < WAL_MAGIC.len() as u64 {
            // Missing file or damaged header: start over.
            let wal = Wal::create(path, start_seq)?;
            return Ok((replay, wal));
        }
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("opening WAL", e))?;
        file.set_len(replay.valid_len)
            .map_err(|e| io_err("truncating WAL tail", e))?;
        if replay.truncated.is_some() {
            file.sync_data().map_err(|e| io_err("syncing WAL", e))?;
        }
        let mut wal = Wal {
            file,
            path: path.to_path_buf(),
            next_seq: replay.last_seq + 1,
            len: replay.valid_len,
            sync_on_commit: true,
            fail_syncs: 0,
        };
        wal.file
            .seek(SeekFrom::Start(wal.len))
            .map_err(|e| io_err("seeking WAL", e))?;
        Ok((replay, wal))
    }

    /// Append one committed batch payload, fsync it (unless disabled), and
    /// return its sequence number. On any failure — including an injected
    /// fsync failure — the partial write is rolled back best-effort and the
    /// commit is NOT acknowledged: after reopening, the batch is absent.
    pub fn append(&mut self, payload: &[u8]) -> RelResult<u64> {
        let seq = self.next_seq;
        let frame = encode_frame(seq, payload);
        let rollback = |file: &mut File, len: u64| {
            let _ = file.set_len(len);
            let _ = file.seek(SeekFrom::Start(len));
        };
        if let Err(e) = self
            .file
            .seek(SeekFrom::Start(self.len))
            .and_then(|_| self.file.write_all(&frame))
        {
            rollback(&mut self.file, self.len);
            return Err(io_err("appending WAL record", e));
        }
        if self.fail_syncs > 0 {
            self.fail_syncs -= 1;
            rollback(&mut self.file, self.len);
            return Err(RelError::Durability(
                "injected fsync failure: commit not acknowledged".to_string(),
            ));
        }
        if self.sync_on_commit {
            if let Err(e) = self.file.sync_data() {
                rollback(&mut self.file, self.len);
                return Err(io_err("fsyncing WAL record", e));
            }
        }
        self.len += frame.len() as u64;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Rewind the log to `offset` bytes / `last_seq`: used when a replayed
    /// record decodes or applies inconsistently and the tail after it must be
    /// dropped.
    pub fn rewind(&mut self, offset: u64, last_seq: u64) -> RelResult<()> {
        self.file
            .set_len(offset)
            .and_then(|_| self.file.seek(SeekFrom::Start(offset)))
            .and_then(|_| self.file.sync_data())
            .map_err(|e| io_err("rewinding WAL", e))?;
        self.len = offset;
        self.next_seq = last_seq + 1;
        Ok(())
    }

    /// Sequence number of the last acknowledged commit.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Current byte length of the log (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Enable/disable fsync-on-commit. Disabling trades crash durability for
    /// throughput; benchmarks use it to isolate the fsync cost.
    pub fn set_sync(&mut self, sync_on_commit: bool) {
        self.sync_on_commit = sync_on_commit;
    }

    /// Make the next `n` appends fail at the fsync step (the commit is rolled
    /// back and not acknowledged) — the fail-fsync disk-fault injector.
    pub fn inject_sync_failures(&mut self, n: u32) {
        self.fail_syncs = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_wal(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("aladin-wal-{tag}-{}-{n}.log", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = temp_wal("roundtrip");
        let mut wal = Wal::create(&path, 0).unwrap();
        assert_eq!(wal.append(b"alpha").unwrap(), 1);
        assert_eq!(wal.append(b"beta").unwrap(), 2);
        let replayed = replay(&path, 0).unwrap();
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.records[0].payload, b"alpha");
        assert_eq!(replayed.last_seq, 2);
        assert!(replayed.truncated.is_none());
        // Replay from a later start skips the already-applied prefix.
        let tail = replay(&path, 1).unwrap();
        assert_eq!(tail.records.len(), 1);
        assert_eq!(tail.records[0].payload, b"beta");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_wal("torn");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(b"kept").unwrap();
        let keep = wal.len_bytes();
        wal.append(b"torn-away").unwrap();
        drop(wal);
        // Cut the last record mid-payload.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep + 5).unwrap();
        drop(f);
        let (replayed, wal) = Wal::recover(&path, 0).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert!(replayed.truncated.is_some());
        assert_eq!(wal.len_bytes(), keep);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep);
        assert_eq!(wal.last_seq(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_fsync_failure_rolls_back_the_commit() {
        let path = temp_wal("fsync");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(b"ok").unwrap();
        wal.inject_sync_failures(1);
        let err = wal.append(b"lost").unwrap_err();
        assert!(matches!(err, RelError::Durability(_)));
        // The failed commit is gone both in the handle and on disk.
        assert_eq!(wal.last_seq(), 1);
        assert_eq!(wal.append(b"next").unwrap(), 2);
        let replayed = replay(&path, 0).unwrap();
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.records[1].payload, b"next");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_and_bad_header_recover_to_empty() {
        let path = temp_wal("fresh");
        let replayed = replay(&path, 7).unwrap();
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.last_seq, 7);
        std::fs::write(&path, b"not a wal at all").unwrap();
        let (replayed, mut wal) = Wal::recover(&path, 0).unwrap();
        assert!(replayed.truncated.is_some());
        assert_eq!(wal.append(b"first").unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn frame_spans_report_offsets() {
        let path = temp_wal("spans");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(b"aa").unwrap();
        wal.append(b"bbbb").unwrap();
        let spans = frame_spans(&path).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], (8, (FRAME_HEADER_LEN + 2) as u64));
        assert_eq!(spans[1].0, 8 + spans[0].1);
        std::fs::remove_file(&path).ok();
    }
}
