//! Checksummed snapshots and the durable database wrapper.
//!
//! The vendored `serde` is a no-op facade (the container is offline), so
//! persistence uses a small hand-rolled little-endian binary codec for
//! [`Value`], [`TableSchema`], [`Table`], [`Constraint`] and [`Database`].
//! A snapshot file is
//!
//! ```text
//! magic("ALDSNAP1")  seq:u64  len:u64  payload[len]  crc:u32
//! ```
//!
//! written atomically via temp-file + rename ([`write_atomic`]), with the CRC
//! covering `seq || len || payload`, so a half-written or bit-flipped
//! snapshot is detected and skipped in favour of an older one.
//!
//! [`DurableDatabase`] combines a snapshot with the write-ahead log of
//! [`crate::wal`]: every committed [`Mutation`] batch is validated, appended
//! to the WAL (fsync'd), and only then applied in memory. Cold-start
//! recovery ([`DurableDatabase::open`], also reachable as
//! [`Database::open`]) loads the newest *valid* snapshot in the directory,
//! replays the WAL tail, and truncates at the first torn or corrupt record
//! instead of refusing to start — losing at most the uncommitted tail.
//! [`DurableDatabase::checkpoint`] writes a fresh snapshot and compacts the
//! WAL down to the records newer than the previous retained snapshot, so a
//! corrupt newest snapshot can still fall back to the older one and replay
//! forward.

use crate::catalog::Database;
use crate::constraint::{Constraint, ForeignKey};
use crate::error::{RelError, RelResult};
use crate::schema::{ColumnDef, TableSchema};
use crate::table::{Row, Table};
use crate::types::DataType;
use crate::value::Value;
use crate::wal::{self, Wal};
use std::path::{Path, PathBuf};

/// First 8 bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ALDSNAP1";

/// First 8 bytes of a small checksummed blob ([`write_blob`]), used for
/// generation markers and other tiny metadata files.
pub const BLOB_MAGIC: [u8; 8] = *b"ALDBLOB1";

fn dur(msg: impl Into<String>) -> RelError {
    RelError::Durability(msg.into())
}

fn io_err(context: &str, e: std::io::Error) -> RelError {
    dur(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

/// Append a `u32` (little-endian) to a buffer.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (little-endian) to a buffer.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string to a buffer.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over an encoded byte slice. Every decoding error
/// is a [`RelError::Durability`] — corruption, never a panic.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> RelResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(dur(format!(
                "truncated encoding: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> RelResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> RelResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> RelResult<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> RelResult<i64> {
        Ok(self.u64()? as i64)
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> RelResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> RelResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| dur("invalid UTF-8 in encoded string"))
    }
}

fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(u8::from(*b));
        }
        Value::Int(i) => {
            buf.push(2);
            put_u64(buf, *i as u64);
        }
        Value::Float(x) => {
            buf.push(3);
            put_u64(buf, x.to_bits());
        }
        Value::Text(s) => {
            buf.push(4);
            put_str(buf, s);
        }
    }
}

fn decode_value(cur: &mut Cursor<'_>) -> RelResult<Value> {
    match cur.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Bool(cur.u8()? != 0)),
        2 => Ok(Value::Int(cur.i64()?)),
        3 => Ok(Value::float(cur.f64()?)),
        4 => Ok(Value::Text(cur.str()?)),
        tag => Err(dur(format!("unknown value tag {tag}"))),
    }
}

fn encode_data_type(buf: &mut Vec<u8>, t: DataType) {
    buf.push(match t {
        DataType::Integer => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Boolean => 3,
    });
}

fn decode_data_type(cur: &mut Cursor<'_>) -> RelResult<DataType> {
    match cur.u8()? {
        0 => Ok(DataType::Integer),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Text),
        3 => Ok(DataType::Boolean),
        tag => Err(dur(format!("unknown data-type tag {tag}"))),
    }
}

fn encode_schema(buf: &mut Vec<u8>, schema: &TableSchema) {
    put_u32(buf, schema.columns().len() as u32);
    for col in schema.columns() {
        put_str(buf, &col.name);
        encode_data_type(buf, col.data_type);
        buf.push(u8::from(col.nullable));
    }
}

fn decode_schema(cur: &mut Cursor<'_>) -> RelResult<TableSchema> {
    let n = cur.u32()? as usize;
    let mut columns = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let name = cur.str()?;
        let data_type = decode_data_type(cur)?;
        let nullable = cur.u8()? != 0;
        columns.push(ColumnDef {
            name,
            data_type,
            nullable,
        });
    }
    TableSchema::new(columns)
}

fn encode_table(buf: &mut Vec<u8>, table: &Table) {
    put_str(buf, table.name());
    encode_schema(buf, table.schema());
    put_u64(buf, table.row_count() as u64);
    for row in table.rows() {
        for v in row {
            encode_value(buf, v);
        }
    }
}

fn decode_table(cur: &mut Cursor<'_>) -> RelResult<Table> {
    let name = cur.str()?;
    let schema = decode_schema(cur)?;
    let arity = schema.arity();
    let rows = cur.u64()? as usize;
    let mut table = Table::with_capacity(name, schema, rows.min(1 << 24));
    for _ in 0..rows {
        let mut row: Row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(decode_value(cur)?);
        }
        table.insert(row)?;
    }
    Ok(table)
}

fn encode_constraint(buf: &mut Vec<u8>, c: &Constraint) {
    match c {
        Constraint::Unique { table, column } => {
            buf.push(0);
            put_str(buf, table);
            put_str(buf, column);
        }
        Constraint::PrimaryKey { table, column } => {
            buf.push(1);
            put_str(buf, table);
            put_str(buf, column);
        }
        Constraint::NotNull { table, column } => {
            buf.push(2);
            put_str(buf, table);
            put_str(buf, column);
        }
        Constraint::ForeignKey(fk) => {
            buf.push(3);
            put_str(buf, &fk.table);
            put_str(buf, &fk.column);
            put_str(buf, &fk.ref_table);
            put_str(buf, &fk.ref_column);
        }
    }
}

fn decode_constraint(cur: &mut Cursor<'_>) -> RelResult<Constraint> {
    let tag = cur.u8()?;
    match tag {
        0..=2 => {
            let table = cur.str()?;
            let column = cur.str()?;
            Ok(match tag {
                0 => Constraint::Unique { table, column },
                1 => Constraint::PrimaryKey { table, column },
                _ => Constraint::NotNull { table, column },
            })
        }
        3 => Ok(Constraint::ForeignKey(ForeignKey {
            table: cur.str()?,
            column: cur.str()?,
            ref_table: cur.str()?,
            ref_column: cur.str()?,
        })),
        tag => Err(dur(format!("unknown constraint tag {tag}"))),
    }
}

/// Encode a whole [`Database`] (name, tables, constraints) to bytes.
pub fn encode_database(db: &Database) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, db.name());
    put_u32(&mut buf, db.table_count() as u32);
    for table in db.tables() {
        encode_table(&mut buf, table);
    }
    put_u32(&mut buf, db.constraints().len() as u32);
    for c in db.constraints() {
        encode_constraint(&mut buf, c);
    }
    buf
}

/// Decode a [`Database`] encoded by [`encode_database`]. Rows and
/// constraints are re-validated through the normal catalog paths, so a
/// corrupt-but-checksum-valid payload cannot produce an inconsistent
/// catalog.
pub fn decode_database(bytes: &[u8]) -> RelResult<Database> {
    let mut cur = Cursor::new(bytes);
    let name = cur.str()?;
    let mut db = Database::new(name);
    let tables = cur.u32()?;
    for _ in 0..tables {
        db.add_table(decode_table(&mut cur)?)?;
    }
    let constraints = cur.u32()?;
    for _ in 0..constraints {
        db.add_constraint(decode_constraint(&mut cur)?)?;
    }
    if cur.remaining() != 0 {
        return Err(dur(format!(
            "{} trailing bytes after database encoding",
            cur.remaining()
        )));
    }
    Ok(db)
}

/// First difference between two databases (`None` = row-for-row identical):
/// name, table set, schemas, every row, and the declared constraints. The
/// workhorse of the recovery-equivalence tests and the crash-check harness.
pub fn diff_databases(a: &Database, b: &Database) -> Option<String> {
    if a.name() != b.name() {
        return Some(format!("name: '{}' vs '{}'", a.name(), b.name()));
    }
    if a.table_names() != b.table_names() {
        return Some(format!(
            "tables: {:?} vs {:?}",
            a.table_names(),
            b.table_names()
        ));
    }
    for ta in a.tables() {
        let tb = match b.table(ta.name()) {
            Ok(t) => t,
            Err(_) => return Some(format!("table '{}' missing", ta.name())),
        };
        if ta.schema().columns() != tb.schema().columns() {
            return Some(format!("schema of '{}' differs", ta.name()));
        }
        if ta.row_count() != tb.row_count() {
            return Some(format!(
                "row count of '{}': {} vs {}",
                ta.name(),
                ta.row_count(),
                tb.row_count()
            ));
        }
        for (i, (ra, rb)) in ta.rows().iter().zip(tb.rows()).enumerate() {
            if ra != rb {
                return Some(format!("row {i} of '{}': {ra:?} vs {rb:?}", ta.name()));
            }
        }
    }
    if a.constraints() != b.constraints() {
        return Some("constraints differ".to_string());
    }
    None
}

// ---------------------------------------------------------------------------
// Atomic checksummed files
// ---------------------------------------------------------------------------

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, then best-effort fsync of the directory.
/// A crash leaves either the old file or the new one, never a mix.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> RelResult<()> {
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| dur(format!("invalid target path {}", path.display())))?;
    let tmp = dir.join(format!(".tmp-{file_name}"));
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("creating temp file", e))?;
        std::io::Write::write_all(&mut f, bytes).map_err(|e| io_err("writing temp file", e))?;
        f.sync_data().map_err(|e| io_err("syncing temp file", e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err("renaming into place", e))?;
    if let Ok(d) = std::fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Write a database snapshot for WAL sequence number `seq` to an explicit
/// path, atomically and checksummed.
pub fn write_snapshot_at(path: &Path, db: &Database, seq: u64) -> RelResult<()> {
    let payload = encode_database(db);
    let mut buf = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 20 + payload.len());
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u64(&mut buf, seq);
    put_u64(&mut buf, payload.len() as u64);
    buf.extend_from_slice(&payload);
    let crc = wal::crc32(&buf[SNAPSHOT_MAGIC.len()..]);
    put_u32(&mut buf, crc);
    write_atomic(path, &buf)
}

/// Read and verify a snapshot file: `(database, wal sequence it covers)`.
/// Any damage — bad magic, wrong length, checksum mismatch, undecodable
/// payload — is a [`RelError::Durability`].
pub fn read_snapshot(path: &Path) -> RelResult<(Database, u64)> {
    let bytes = std::fs::read(path).map_err(|e| io_err("reading snapshot", e))?;
    let head = SNAPSHOT_MAGIC.len();
    if bytes.len() < head + 20 || bytes[..head] != SNAPSHOT_MAGIC {
        return Err(dur("missing or damaged snapshot header"));
    }
    let crc_stored = u32::from_le_bytes(
        bytes[bytes.len() - 4..]
            .try_into()
            .unwrap_or_else(|_| unreachable!("slice is 4 bytes")),
    );
    let body = &bytes[head..bytes.len() - 4];
    if wal::crc32(body) != crc_stored {
        return Err(dur("snapshot checksum mismatch"));
    }
    let mut cur = Cursor::new(body);
    let seq = cur.u64()?;
    let len = cur.u64()? as usize;
    if cur.remaining() != len {
        return Err(dur(format!(
            "snapshot length mismatch: header says {len}, {} present",
            cur.remaining()
        )));
    }
    let db = decode_database(&body[16..])?;
    Ok((db, seq))
}

/// Write a small checksummed blob (magic + length + payload + CRC32)
/// atomically — generation markers and other tiny metadata files.
pub fn write_blob(path: &Path, payload: &[u8]) -> RelResult<()> {
    let mut buf = Vec::with_capacity(BLOB_MAGIC.len() + 12 + payload.len());
    buf.extend_from_slice(&BLOB_MAGIC);
    put_u64(&mut buf, payload.len() as u64);
    buf.extend_from_slice(payload);
    let crc = wal::crc32(&buf[BLOB_MAGIC.len()..]);
    put_u32(&mut buf, crc);
    write_atomic(path, &buf)
}

/// Read and verify a blob written by [`write_blob`].
pub fn read_blob(path: &Path) -> RelResult<Vec<u8>> {
    let bytes = std::fs::read(path).map_err(|e| io_err("reading blob", e))?;
    let head = BLOB_MAGIC.len();
    if bytes.len() < head + 12 || bytes[..head] != BLOB_MAGIC {
        return Err(dur("missing or damaged blob header"));
    }
    let crc_stored = u32::from_le_bytes(
        bytes[bytes.len() - 4..]
            .try_into()
            .unwrap_or_else(|_| unreachable!("slice is 4 bytes")),
    );
    let body = &bytes[head..bytes.len() - 4];
    if wal::crc32(body) != crc_stored {
        return Err(dur("blob checksum mismatch"));
    }
    let mut cur = Cursor::new(body);
    let len = cur.u64()? as usize;
    if cur.remaining() != len {
        return Err(dur("blob length mismatch"));
    }
    Ok(body[8..].to_vec())
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

/// One logged catalog mutation. A committed WAL record is an encoded batch
/// of these; replaying a batch through the normal catalog paths reproduces
/// the in-memory state exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Create an empty table.
    CreateTable {
        /// Table name.
        name: String,
        /// Column layout.
        schema: TableSchema,
    },
    /// Drop a table (and its rows).
    DropTable {
        /// Table name.
        name: String,
    },
    /// Append rows to a table.
    Insert {
        /// Table name.
        table: String,
        /// Rows to append, in order.
        rows: Vec<Row>,
    },
    /// Declare a constraint in the data dictionary.
    AddConstraint(Constraint),
}

/// Encode a mutation batch into one WAL record payload.
pub fn encode_batch(batch: &[Mutation]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, batch.len() as u32);
    for m in batch {
        match m {
            Mutation::CreateTable { name, schema } => {
                buf.push(0);
                put_str(&mut buf, name);
                encode_schema(&mut buf, schema);
            }
            Mutation::DropTable { name } => {
                buf.push(1);
                put_str(&mut buf, name);
            }
            Mutation::Insert { table, rows } => {
                buf.push(2);
                put_str(&mut buf, table);
                put_u32(&mut buf, rows.len() as u32);
                for row in rows {
                    put_u32(&mut buf, row.len() as u32);
                    for v in row {
                        encode_value(&mut buf, v);
                    }
                }
            }
            Mutation::AddConstraint(c) => {
                buf.push(3);
                encode_constraint(&mut buf, c);
            }
        }
    }
    buf
}

/// Decode a WAL record payload back into a mutation batch.
pub fn decode_batch(bytes: &[u8]) -> RelResult<Vec<Mutation>> {
    let mut cur = Cursor::new(bytes);
    let n = cur.u32()? as usize;
    let mut batch = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let m = match cur.u8()? {
            0 => Mutation::CreateTable {
                name: cur.str()?,
                schema: decode_schema(&mut cur)?,
            },
            1 => Mutation::DropTable { name: cur.str()? },
            2 => {
                let table = cur.str()?;
                let rows = cur.u32()? as usize;
                let mut decoded = Vec::with_capacity(rows.min(1 << 20));
                for _ in 0..rows {
                    let arity = cur.u32()? as usize;
                    let mut row: Row = Vec::with_capacity(arity.min(1 << 16));
                    for _ in 0..arity {
                        row.push(decode_value(&mut cur)?);
                    }
                    decoded.push(row);
                }
                Mutation::Insert {
                    table,
                    rows: decoded,
                }
            }
            3 => Mutation::AddConstraint(decode_constraint(&mut cur)?),
            tag => return Err(dur(format!("unknown mutation tag {tag}"))),
        };
        batch.push(m);
    }
    if cur.remaining() != 0 {
        return Err(dur("trailing bytes after mutation batch"));
    }
    Ok(batch)
}

/// Validate a batch against the current catalog *without* mutating it,
/// mirroring every check [`apply_batch`] would hit — table existence, row
/// arity/types/NOT NULL, constraint references — so that once a batch is in
/// the WAL, applying it cannot fail.
fn validate_batch(db: &Database, batch: &[Mutation]) -> RelResult<()> {
    use std::collections::BTreeMap;
    // Overlay of in-batch effects: Some(schema) = exists, None = dropped.
    let mut overlay: BTreeMap<String, Option<TableSchema>> = BTreeMap::new();
    let lookup =
        |overlay: &BTreeMap<String, Option<TableSchema>>, name: &str| -> Option<TableSchema> {
            let key = name.to_ascii_lowercase();
            match overlay.get(&key) {
                Some(Some(schema)) => Some(schema.clone()),
                Some(None) => None,
                None => db.table(name).ok().map(|t| t.schema().clone()),
            }
        };
    for m in batch {
        match m {
            Mutation::CreateTable { name, schema } => {
                if lookup(&overlay, name).is_some() {
                    return Err(RelError::AlreadyExists(format!("table '{name}'")));
                }
                overlay.insert(name.to_ascii_lowercase(), Some(schema.clone()));
            }
            Mutation::DropTable { name } => {
                if lookup(&overlay, name).is_none() {
                    return Err(RelError::UnknownTable(name.clone()));
                }
                overlay.insert(name.to_ascii_lowercase(), None);
            }
            Mutation::Insert { table, rows } => {
                let schema =
                    lookup(&overlay, table).ok_or_else(|| RelError::UnknownTable(table.clone()))?;
                for row in rows {
                    if row.len() != schema.arity() {
                        return Err(RelError::SchemaMismatch(format!(
                            "table '{table}' expects {} values, got {}",
                            schema.arity(),
                            row.len()
                        )));
                    }
                    for (idx, value) in row.iter().enumerate() {
                        let col = schema
                            .column_at(idx)
                            .ok_or_else(|| dur("column index out of range"))?;
                        if let Some(vt) = value.data_type() {
                            if !col.data_type.accepts(vt) {
                                return Err(RelError::SchemaMismatch(format!(
                                    "column '{table}.{}' of type {} cannot store type {vt}",
                                    col.name, col.data_type
                                )));
                            }
                        } else if !col.nullable {
                            return Err(RelError::ConstraintViolation(format!(
                                "column '{table}.{}' is NOT NULL",
                                col.name
                            )));
                        }
                    }
                }
            }
            Mutation::AddConstraint(c) => {
                let check = |table: &str, column: &str| -> RelResult<()> {
                    let schema = lookup(&overlay, table)
                        .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
                    schema.require(column).map(|_| ())
                };
                match c {
                    Constraint::Unique { table, column }
                    | Constraint::PrimaryKey { table, column }
                    | Constraint::NotNull { table, column } => check(table, column)?,
                    Constraint::ForeignKey(fk) => {
                        check(&fk.table, &fk.column)?;
                        check(&fk.ref_table, &fk.ref_column)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Apply a (validated or replayed) batch to a database through the normal
/// catalog paths.
pub fn apply_batch(db: &mut Database, batch: &[Mutation]) -> RelResult<()> {
    for m in batch {
        match m {
            Mutation::CreateTable { name, schema } => db.create_table(name, schema.clone())?,
            Mutation::DropTable { name } => {
                db.drop_table(name)?;
            }
            Mutation::Insert { table, rows } => {
                db.insert_all(table, rows.iter().cloned())?;
            }
            Mutation::AddConstraint(c) => db.add_constraint(c.clone())?,
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The durable database
// ---------------------------------------------------------------------------

/// What cold-start recovery found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL sequence the loaded snapshot covered (0 = recovered from empty).
    pub snapshot_seq: u64,
    /// Snapshot files skipped because they failed verification.
    pub snapshots_skipped: usize,
    /// Committed batches replayed from the WAL tail.
    pub records_replayed: usize,
    /// Duplicated WAL frames skipped during replay.
    pub duplicates_skipped: usize,
    /// Why (and that) the WAL tail was truncated, if it was.
    pub truncated: Option<String>,
}

impl RecoveryReport {
    /// True when recovery found any damage (skipped snapshot, cut tail).
    pub fn found_damage(&self) -> bool {
        self.snapshots_skipped > 0 || self.truncated.is_some()
    }
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:016x}.snap"))
}

/// Snapshot files in `dir`, newest (highest sequence) first.
fn list_snapshots(dir: &Path) -> RelResult<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(io_err("listing snapshot directory", e)),
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(hex) = name
            .strip_prefix("snapshot-")
            .and_then(|r| r.strip_suffix(".snap"))
        {
            if let Ok(seq) = u64::from_str_radix(hex, 16) {
                found.push((seq, entry.path()));
            }
        }
    }
    found.sort_by_key(|entry| std::cmp::Reverse(entry.0));
    Ok(found)
}

/// A [`Database`] with a write-ahead log and checksummed snapshots behind
/// it: mutations go through [`DurableDatabase::commit`] (validate → WAL
/// append + fsync → apply in memory), reads through
/// [`DurableDatabase::db`]. See the [module docs](self) for the on-disk
/// layout and recovery semantics.
#[derive(Debug)]
pub struct DurableDatabase {
    db: Database,
    dir: PathBuf,
    wal: Wal,
    /// Sequence covered by the newest on-disk snapshot.
    snapshot_seq: u64,
    /// Commits since the last checkpoint.
    commits_since_checkpoint: usize,
    /// Auto-checkpoint after this many commits (0 = manual only).
    checkpoint_every: usize,
    recovery: RecoveryReport,
}

impl DurableDatabase {
    /// Open (or initialize) a durable database in `dir`, naming a fresh
    /// database `name` when the directory holds no data yet. Performs full
    /// cold-start recovery: newest valid snapshot, WAL tail replay,
    /// truncation at the first torn/corrupt record.
    pub fn open_named(dir: impl AsRef<Path>, name: &str) -> RelResult<DurableDatabase> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("creating data directory", e))?;
        // Clear stale temp files from interrupted atomic writes.
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                if entry
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with(".tmp-"))
                {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        // The name is persisted in a tiny checksummed blob so that a store
        // recovered from WAL alone (no snapshot yet) keeps its identity.
        let name_path = dir.join("NAME");
        let persisted_name = read_blob(&name_path)
            .ok()
            .and_then(|b| String::from_utf8(b).ok());
        let mut report = RecoveryReport::default();
        let mut db = None;
        for (seq, path) in list_snapshots(&dir)? {
            match read_snapshot(&path) {
                Ok((loaded, snap_seq)) => {
                    // Trust the (checksummed) header over the file name.
                    report.snapshot_seq = snap_seq.min(seq);
                    db = Some(loaded);
                    break;
                }
                Err(_) => report.snapshots_skipped += 1,
            }
        }
        let mut db = db.unwrap_or_else(|| {
            Database::new(persisted_name.clone().unwrap_or_else(|| name.to_string()))
        });
        if persisted_name.is_none() {
            write_blob(&name_path, db.name().as_bytes())?;
        }
        let (replay, mut wal) = Wal::recover(&dir.join("wal.log"), report.snapshot_seq)?;
        report.truncated = replay.truncated;
        report.duplicates_skipped = replay.duplicates_skipped;
        for record in &replay.records {
            let outcome = decode_batch(&record.payload).and_then(|batch| {
                apply_batch(&mut db, &batch)?;
                Ok(())
            });
            match outcome {
                Ok(()) => report.records_replayed += 1,
                Err(e) => {
                    // A checksum-valid record that does not decode or apply
                    // consistently: cut the tail here, like a torn record.
                    wal.rewind(record.offset, record.seq - 1)?;
                    report.truncated = Some(format!(
                        "record seq {} not applicable ({e}); tail dropped",
                        record.seq
                    ));
                    break;
                }
            }
        }
        Ok(DurableDatabase {
            db,
            dir,
            wal,
            snapshot_seq: report.snapshot_seq,
            commits_since_checkpoint: 0,
            checkpoint_every: 0,
            recovery: report,
        })
    }

    /// [`DurableDatabase::open_named`] with the directory's file stem as the
    /// database name.
    pub fn open(dir: impl AsRef<Path>) -> RelResult<DurableDatabase> {
        let dir = dir.as_ref();
        let name = dir
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("database")
            .to_string();
        DurableDatabase::open_named(dir, &name)
    }

    /// The recovered/served database (read-only: mutations must go through
    /// [`DurableDatabase::commit`] to be durable).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// What cold-start recovery found and did.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the last committed batch.
    pub fn last_seq(&self) -> u64 {
        self.wal.last_seq()
    }

    /// Current WAL length in bytes.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// Auto-checkpoint after every `n` commits (0 disables; default).
    pub fn set_checkpoint_every(&mut self, n: usize) {
        self.checkpoint_every = n;
    }

    /// Disable/enable fsync-on-commit (benchmarks only; see
    /// [`Wal::set_sync`]).
    pub fn set_sync(&mut self, sync: bool) {
        self.wal.set_sync(sync);
    }

    /// Make the next `n` commits fail at the fsync step (disk-fault
    /// injection; the commit is rolled back, memory and disk both stay
    /// without the batch).
    pub fn inject_fsync_failures(&mut self, n: u32) {
        self.wal.inject_sync_failures(n);
    }

    /// Commit one mutation batch: validate against the catalog, append to
    /// the WAL (fsync'd), then apply in memory. Returns the batch's sequence
    /// number. On any error nothing is applied and nothing is acknowledged.
    pub fn commit(&mut self, batch: Vec<Mutation>) -> RelResult<u64> {
        validate_batch(&self.db, &batch)?;
        let payload = encode_batch(&batch);
        let seq = self.wal.append(&payload)?;
        // Validation mirrors every check the catalog paths make, so this
        // cannot fail; if it ever does, surface it as corruption instead of
        // panicking.
        apply_batch(&mut self.db, &batch)
            .map_err(|e| dur(format!("validated batch failed to apply: {e}")))?;
        self.commits_since_checkpoint += 1;
        if self.checkpoint_every > 0 && self.commits_since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(seq)
    }

    /// Convenience commit of a single insert batch.
    pub fn commit_insert(&mut self, table: &str, rows: Vec<Row>) -> RelResult<u64> {
        self.commit(vec![Mutation::Insert {
            table: table.to_string(),
            rows,
        }])
    }

    /// Write a fresh snapshot at the current sequence, keep the previous
    /// snapshot as a fallback (pruning older ones), and compact the WAL down
    /// to the records newer than that fallback — so recovery can still
    /// replay forward if the newest snapshot is damaged.
    pub fn checkpoint(&mut self) -> RelResult<u64> {
        let seq = self.wal.last_seq();
        write_snapshot_at(&snapshot_path(&self.dir, seq), &self.db, seq)?;
        // Keep the two newest snapshots, prune the rest.
        let snapshots = list_snapshots(&self.dir)?;
        let fallback_seq = snapshots.get(1).map(|(s, _)| *s).unwrap_or(seq);
        for (_, path) in snapshots.iter().skip(2) {
            let _ = std::fs::remove_file(path);
        }
        // Compact: rewrite the WAL with only the records the fallback
        // snapshot still needs.
        let kept = wal::replay(self.wal.path(), fallback_seq)?;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&wal::WAL_MAGIC);
        for record in &kept.records {
            bytes.extend_from_slice(&wal::encode_frame(record.seq, &record.payload));
        }
        let path = self.wal.path().to_path_buf();
        write_atomic(&path, &bytes)?;
        let (_, wal) = Wal::recover(&path, fallback_seq)?;
        let sync = {
            // Preserve the sync setting across the handle swap.
            let mut w = wal;
            w.set_sync(true);
            w
        };
        self.wal = sync;
        self.snapshot_seq = seq;
        self.commits_since_checkpoint = 0;
        Ok(seq)
    }
}

impl Database {
    /// Open a durable database directory with cold-start recovery: load the
    /// newest valid snapshot, replay the WAL tail, truncate at the first
    /// torn or corrupt record. See [`DurableDatabase`].
    pub fn open(dir: impl AsRef<Path>) -> RelResult<DurableDatabase> {
        DurableDatabase::open(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("aladin-persist-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_db() -> Database {
        let mut db = Database::new("protkb");
        db.create_table(
            "entry",
            TableSchema::of(vec![
                ColumnDef::int("id"),
                ColumnDef::text("ac"),
                ColumnDef::float("score"),
            ]),
        )
        .unwrap();
        db.insert(
            "entry",
            vec![Value::Int(1), Value::text("P10001"), Value::float(0.5)],
        )
        .unwrap();
        db.insert("entry", vec![Value::Int(2), Value::Null, Value::Null])
            .unwrap();
        db.add_constraint(Constraint::Unique {
            table: "entry".into(),
            column: "id".into(),
        })
        .unwrap();
        db
    }

    #[test]
    fn database_codec_round_trips() {
        let db = sample_db();
        let bytes = encode_database(&db);
        let decoded = decode_database(&bytes).unwrap();
        assert_eq!(diff_databases(&db, &decoded), None);
    }

    #[test]
    fn snapshot_write_read_and_corruption_detection() {
        let dir = temp_dir("snap");
        let db = sample_db();
        let path = snapshot_path(&dir, 42);
        write_snapshot_at(&path, &db, 42).unwrap();
        let (loaded, seq) = read_snapshot(&path).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(diff_databases(&db, &loaded), None);
        // Flip one payload byte: the checksum catches it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&path), Err(RelError::Durability(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blob_round_trip_and_corruption() {
        let dir = temp_dir("blob");
        let path = dir.join("GENERATION");
        write_blob(&path, b"generation 17").unwrap();
        assert_eq!(read_blob(&path).unwrap(), b"generation 17");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 6;
        bytes[last] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_blob(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_recover_equivalence() {
        let dir = temp_dir("commit");
        let mut store = DurableDatabase::open_named(&dir, "protkb").unwrap();
        store
            .commit(vec![Mutation::CreateTable {
                name: "entry".into(),
                schema: TableSchema::of(vec![ColumnDef::int("id"), ColumnDef::text("ac")]),
            }])
            .unwrap();
        store
            .commit_insert(
                "entry",
                vec![
                    vec![Value::Int(1), Value::text("P1")],
                    vec![Value::Int(2), Value::text("P2")],
                ],
            )
            .unwrap();
        let in_memory = store.db().clone();
        drop(store);
        let reopened = Database::open(&dir).unwrap();
        assert_eq!(diff_databases(&in_memory, reopened.db()), None);
        assert_eq!(reopened.recovery().records_replayed, 2);
        assert!(!reopened.recovery().found_damage());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_batches_are_rejected_before_the_wal() {
        let dir = temp_dir("invalid");
        let mut store = DurableDatabase::open_named(&dir, "x").unwrap();
        let before = store.wal_len_bytes();
        // Insert into a missing table.
        assert!(store
            .commit_insert("nope", vec![vec![Value::Int(1)]])
            .is_err());
        // Wrong arity within a batch that creates the table first.
        let err = store.commit(vec![
            Mutation::CreateTable {
                name: "t".into(),
                schema: TableSchema::of(vec![ColumnDef::int("a")]),
            },
            Mutation::Insert {
                table: "t".into(),
                rows: vec![vec![Value::Int(1), Value::Int(2)]],
            },
        ]);
        assert!(err.is_err());
        assert_eq!(store.wal_len_bytes(), before);
        assert_eq!(store.db().table_count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_compacts_and_falls_back_on_corrupt_newest_snapshot() {
        let dir = temp_dir("ckpt");
        let mut store = DurableDatabase::open_named(&dir, "x").unwrap();
        store
            .commit(vec![Mutation::CreateTable {
                name: "t".into(),
                schema: TableSchema::of(vec![ColumnDef::int("a")]),
            }])
            .unwrap();
        for i in 0..5 {
            store.commit_insert("t", vec![vec![Value::Int(i)]]).unwrap();
        }
        store.checkpoint().unwrap();
        for i in 5..8 {
            store.commit_insert("t", vec![vec![Value::Int(i)]]).unwrap();
        }
        store.checkpoint().unwrap();
        store
            .commit_insert("t", vec![vec![Value::Int(99)]])
            .unwrap();
        let expect = store.db().clone();
        drop(store);

        // Healthy reopen: snapshot + 1 replayed record.
        let reopened = Database::open(&dir).unwrap();
        assert_eq!(diff_databases(&expect, reopened.db()), None);
        assert_eq!(reopened.recovery().records_replayed, 1);
        drop(reopened);

        // Corrupt the newest snapshot: recovery falls back to the previous
        // one and replays the WAL forward to the same state.
        let snaps = list_snapshots(&dir).unwrap();
        assert!(snaps.len() >= 2);
        let mut bytes = std::fs::read(&snaps[0].1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&snaps[0].1, &bytes).unwrap();
        let reopened = Database::open(&dir).unwrap();
        assert_eq!(reopened.recovery().snapshots_skipped, 1);
        assert_eq!(diff_databases(&expect, reopened.db()), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_checkpoint_triggers_on_interval() {
        let dir = temp_dir("auto");
        let mut store = DurableDatabase::open_named(&dir, "x").unwrap();
        store.set_checkpoint_every(3);
        store
            .commit(vec![Mutation::CreateTable {
                name: "t".into(),
                schema: TableSchema::of(vec![ColumnDef::int("a")]),
            }])
            .unwrap();
        store.commit_insert("t", vec![vec![Value::Int(1)]]).unwrap();
        store.commit_insert("t", vec![vec![Value::Int(2)]]).unwrap();
        assert!(!list_snapshots(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
