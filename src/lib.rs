//! # aladin
//!
//! Facade crate of the ALADIN reproduction — *(Almost) Hands-Off Information
//! Integration for the Life Sciences* (Leser & Naumann, CIDR 2005).
//!
//! The workspace is organised as one crate per subsystem; this crate
//! re-exports them under stable module names so applications can depend on a
//! single crate:
//!
//! * [`relstore`] — in-memory relational substrate (tables, catalog,
//!   constraints, statistics, SQL).
//! * [`textmine`] — string similarity, TF-IDF, inverted index, entity
//!   recognition.
//! * [`seq`] — sequence alphabets, Smith-Waterman, BLAST-like homology search.
//! * [`import`] — flat-file / XML / tabular / FASTA importers.
//! * [`schema_match`] — inclusion-dependency mining and schema matchers.
//! * [`core`] — the ALADIN system itself: five-step integration pipeline,
//!   metadata repository, access engine, evaluation harness.
//! * [`datagen`] — synthetic life-science corpora with ground truth.
//! * [`baseline`] — SRS-like, mediator-style and manual-curation comparison
//!   systems.
//!
//! ## Quickstart
//!
//! ```
//! use aladin::core::{Aladin, AladinConfig};
//! use aladin::datagen::{Corpus, CorpusConfig};
//!
//! // Generate a small synthetic corpus (stand-in for public downloads).
//! let corpus = Corpus::generate(&CorpusConfig::small(7));
//!
//! // Integrate every source almost hands-off.
//! let mut aladin = Aladin::new(AladinConfig::default());
//! for dump in &corpus.sources {
//!     let report = aladin
//!         .add_source_files(&dump.name, dump.format, &dump.files)
//!         .expect("integration succeeds");
//!     assert!(report.tables > 0);
//! }
//! assert_eq!(aladin.source_count(), corpus.sources.len());
//! // Links between sources were discovered automatically.
//! assert!(aladin.link_count() > 0);
//! ```

#![warn(missing_docs)]

pub use aladin_baseline as baseline;
pub use aladin_core as core;
pub use aladin_datagen as datagen;
pub use aladin_import as import;
pub use aladin_relstore as relstore;
pub use aladin_schema_match as schema_match;
pub use aladin_seq as seq;
pub use aladin_textmine as textmine;
