//! The cross-database query of Section 6: "consider a query for all genes of a
//! certain species on a certain chromosome that are connected to a disease via
//! a protein whose function is known" — a query spanning several object types
//! and several sources, answered by following discovered links and ranked by
//! the number of independent paths.
//!
//! Run with: `cargo run --release --example cross_database_query`

use aladin::core::access::{BrowseEngine, QueryEngine};
use aladin::core::{Aladin, AladinConfig};
use aladin::datagen::{Corpus, CorpusConfig};

fn main() {
    let mut config = CorpusConfig::medium(23);
    config.gene_fraction = 0.9;
    config.structure_fraction = 0.5;
    let corpus = Corpus::generate(&config);
    let mut aladin = Aladin::new(AladinConfig::default());
    for dump in &corpus.sources {
        aladin
            .add_source_files(&dump.name, dump.format, &dump.files)
            .expect("integration succeeds");
    }
    let query = QueryEngine::new(&aladin);
    let browse = BrowseEngine::new(&aladin);

    // Step 1: select genes of a certain species on a certain chromosome with
    // plain SQL over the imported gene schema.
    let genes = query
        .sql(
            "genedb",
            "SELECT id, symbol, chromosome FROM genes_gene WHERE chromosome = '5' OR chromosome = '17' LIMIT 40",
        )
        .expect("gene selection");
    println!("selected {} genes on chromosomes 5 and 17", genes.row_count());

    // Step 2: follow the discovered links gene -> protein -> structure /
    // functional annotation, keeping only genes whose protein has a known
    // function (an ontology-term link) — the shape of the paper's example.
    let mut answers = Vec::new();
    for row in genes.rows() {
        let gene_acc = row[0].render();
        let gene = match browse.find_object("genedb", &gene_acc) {
            Ok(g) => g,
            Err(_) => continue,
        };
        let gene_view = browse.view(&gene).expect("gene view");
        for (protein, _, _) in gene_view.linked.iter().filter(|(o, _, _)| o.source == "protkb") {
            let protein_view = browse.view(protein).expect("protein view");
            let has_function = protein_view
                .linked
                .iter()
                .any(|(o, _, _)| o.source == "ontodb");
            let structure = protein_view
                .linked
                .iter()
                .find(|(o, _, _)| o.source == "structdb");
            if has_function {
                answers.push((
                    gene_acc.clone(),
                    row[1].render(),
                    protein.accession.clone(),
                    structure.map(|(s, _, _)| s.accession.clone()),
                ));
            }
        }
    }
    println!(
        "{} genes are connected to a functionally annotated protein:",
        answers.len()
    );
    for (gene, symbol, protein, structure) in answers.iter().take(10) {
        println!(
            "  gene {gene} ({symbol}) -> protein {protein} -> structure {}",
            structure.clone().unwrap_or_else(|| "-".into())
        );
    }

    // Step 3: the path-count ranking the paper proposes: proteins linked to
    // structures, ordered by the number of independent link paths.
    let ranked = query
        .cross_source_objects("protkb", "structdb")
        .expect("cross-source query");
    println!("\ntop protein-structure connections by number of independent paths:");
    for (protein, structure, paths) in ranked.iter().take(5) {
        println!("  {protein} -> {structure}: {paths} path(s)");
    }
}
