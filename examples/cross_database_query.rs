//! The cross-database query of Section 6: "consider a query for all genes of a
//! certain species on a certain chromosome that are connected to a disease via
//! a protein whose function is known" — a query spanning several object types
//! and several sources, answered by following discovered links and ranked by
//! the number of independent paths.
//!
//! Run with: `cargo run --release --example cross_database_query`

use aladin::core::access::Warehouse;
use aladin::core::AladinConfig;
use aladin::datagen::{Corpus, CorpusConfig};

fn main() {
    let mut config = CorpusConfig::medium(23);
    config.gene_fraction = 0.9;
    config.structure_fraction = 0.5;
    let corpus = Corpus::generate(&config);
    let mut warehouse = Warehouse::new(AladinConfig::default());
    for dump in &corpus.sources {
        warehouse
            .add_source_files(&dump.name, dump.format, &dump.files)
            .expect("integration succeeds");
    }

    // Step 1: select genes of a certain species on a certain chromosome with
    // plain SQL over the imported gene schema (LIMIT/OFFSET paginate).
    let genes = warehouse
        .sql(
            "genedb",
            "SELECT id, symbol, chromosome FROM genes_gene WHERE chromosome = '5' OR chromosome = '17' LIMIT 40",
        )
        .expect("gene selection");
    println!(
        "selected {} genes on chromosomes 5 and 17",
        genes.row_count()
    );

    // Step 2: follow the discovered links gene -> protein -> structure /
    // functional annotation, keeping only genes whose protein has a known
    // function (an ontology-term link) — the shape of the paper's example.
    // Each hop is one composed query over the cached link adjacency.
    let mut answers = Vec::new();
    for row in genes.rows() {
        let gene_acc = row[0].render();
        let proteins = warehouse
            .accession("genedb", &gene_acc)
            .follow_links(None, 1)
            .from_source("protkb")
            .fetch()
            .unwrap_or_default();
        for protein in proteins {
            let function_known = warehouse
                .accession("protkb", &protein.object.accession)
                .follow_links(None, 1)
                .from_source("ontodb")
                .count()
                .unwrap_or(0)
                > 0;
            if !function_known {
                continue;
            }
            let structure = warehouse
                .accession("protkb", &protein.object.accession)
                .follow_links(None, 1)
                .from_source("structdb")
                .limit(1)
                .fetch()
                .unwrap_or_default()
                .into_iter()
                .next();
            answers.push((
                gene_acc.clone(),
                row[1].render(),
                protein.object.accession.clone(),
                structure.map(|s| s.object.accession),
            ));
        }
    }
    println!(
        "{} genes are connected to a functionally annotated protein:",
        answers.len()
    );
    for (gene, symbol, protein, structure) in answers.iter().take(10) {
        println!(
            "  gene {gene} ({symbol}) -> protein {protein} -> structure {}",
            structure.clone().unwrap_or_else(|| "-".into())
        );
    }

    // Step 3: the path-count ranking the paper proposes: proteins linked to
    // structures, ordered by the number of independent link paths.
    let ranked = warehouse
        .cross_source_objects("protkb", "structdb")
        .expect("cross-source query");
    println!("\ntop protein-structure connections by number of independent paths:");
    for (protein, structure, paths) in ranked.iter().take(5) {
        println!("  {protein} -> {structure}: {paths} path(s)");
    }
}
