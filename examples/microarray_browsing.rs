//! The microarray scenario of Section 6.2: "typical microarray experiments
//! produce a set of 50-100 genes. Biologists then manually browse a large
//! number of web sites following hyper links for each gene." With ALADIN the
//! whole neighbourhood of every gene — proteins, structures, functional terms,
//! duplicates — is available from one integrated warehouse, plus ranked
//! full-text search.
//!
//! Run with: `cargo run --release --example microarray_browsing`

use aladin::core::access::Warehouse;
use aladin::core::AladinConfig;
use aladin::datagen::{Corpus, CorpusConfig};

fn main() {
    let mut config = CorpusConfig::medium(11);
    config.gene_fraction = 0.9;
    let corpus = Corpus::generate(&config);
    let mut warehouse = Warehouse::new(AladinConfig::default());
    for dump in &corpus.sources {
        warehouse
            .add_source_files(&dump.name, dump.format, &dump.files)
            .expect("integration succeeds");
    }

    // The "hit list" of a microarray experiment: 60 genes.
    let genes = warehouse
        .scan()
        .from_source("genedb")
        .limit(60)
        .fetch()
        .expect("genes integrated");
    println!(
        "browsing {} genes from the experiment hit list\n",
        genes.len()
    );

    // Every view is served from the warehouse's cached link adjacency — the
    // 60 views below scan the link set once in total, not once per gene.
    let mut total_links = 0usize;
    for (i, gene) in genes.iter().enumerate() {
        let view = warehouse.view(&gene.object).expect("gene view");
        total_links += view.linked.len();
        if i < 5 {
            let targets: Vec<String> = view
                .linked
                .iter()
                .take(4)
                .map(|(o, kind, _)| format!("{o} [{kind}]"))
                .collect();
            println!(
                "{}: {} links, e.g. {}",
                gene.object,
                view.linked.len(),
                targets.join(", ")
            );
        }
    }
    println!(
        "...\naltogether {} links reachable from the hit list without visiting a single web site",
        total_links
    );

    // Google-style retrieval across all integrated sources.
    println!("\nranked search for 'kinase cell cycle regulation':");
    for hit in warehouse
        .search_hits("kinase cell cycle regulation", 5)
        .expect("search index")
    {
        println!(
            "  {:30} score {:.3} (field {})",
            hit.object.to_string(),
            hit.score,
            hit.field
        );
    }
    println!("\nsearch restricted to the ontology source:");
    for hit in warehouse
        .search_hits_in_source("cell cycle regulation", "ontodb", 3)
        .expect("search index")
    {
        println!("  {:30} score {:.3}", hit.object.to_string(), hit.score);
    }
}
