//! The microarray scenario of Section 6.2: "typical microarray experiments
//! produce a set of 50-100 genes. Biologists then manually browse a large
//! number of web sites following hyper links for each gene." With ALADIN the
//! whole neighbourhood of every gene — proteins, structures, functional terms,
//! duplicates — is available from one integrated warehouse, plus ranked
//! full-text search.
//!
//! Run with: `cargo run --release --example microarray_browsing`

use aladin::core::access::{BrowseEngine, SearchEngine};
use aladin::core::{Aladin, AladinConfig};
use aladin::datagen::{Corpus, CorpusConfig};

fn main() {
    let mut config = CorpusConfig::medium(11);
    config.gene_fraction = 0.9;
    let corpus = Corpus::generate(&config);
    let mut aladin = Aladin::new(AladinConfig::default());
    for dump in &corpus.sources {
        aladin
            .add_source_files(&dump.name, dump.format, &dump.files)
            .expect("integration succeeds");
    }

    // The "hit list" of a microarray experiment: 60 genes.
    let genes = aladin.objects_of("genedb").expect("genes integrated");
    let hit_list: Vec<_> = genes.iter().take(60).collect();
    println!("browsing {} genes from the experiment hit list\n", hit_list.len());

    let browse = BrowseEngine::new(&aladin);
    let mut total_links = 0usize;
    for (i, gene) in hit_list.iter().enumerate() {
        let view = browse.view(gene).expect("gene view");
        total_links += view.linked.len();
        if i < 5 {
            let targets: Vec<String> = view
                .linked
                .iter()
                .take(4)
                .map(|(o, kind, _)| format!("{o} [{kind}]"))
                .collect();
            println!("{gene}: {} links, e.g. {}", view.linked.len(), targets.join(", "));
        }
    }
    println!(
        "...\naltogether {} links reachable from the hit list without visiting a single web site",
        total_links
    );

    // Google-style retrieval across all integrated sources.
    let search = SearchEngine::build(&aladin).expect("search index");
    println!("\nranked search for 'kinase cell cycle regulation':");
    for hit in search.search("kinase cell cycle regulation", 5) {
        println!("  {:30} score {:.3} (field {})", hit.object.to_string(), hit.score, hit.field);
    }
    println!("\nsearch restricted to the ontology source:");
    for hit in search.search_source("cell cycle regulation", "ontodb", 3) {
        println!("  {:30} score {:.3}", hit.object.to_string(), hit.score);
    }
}
