//! The COLUMBA-style case study (paper, Section 5): annotate protein
//! structures with protein, gene and functional information from several
//! sources, relying only on ALADIN's automatic discovery — no hand-written
//! schema mappings.
//!
//! Run with: `cargo run --release --example protein_structure_annotation`

use aladin::core::access::Warehouse;
use aladin::core::AladinConfig;
use aladin::datagen::{Corpus, CorpusConfig};

fn main() {
    // A corpus with a high structure coverage and some annotation backlog
    // (missing cross-references), as in the real PDB/Swiss-Prot landscape.
    let mut config = CorpusConfig::medium(7);
    config.structure_fraction = 0.5;
    config.missing_xref_rate = 0.25;
    let corpus = Corpus::generate(&config);

    let mut warehouse = Warehouse::new(AladinConfig::default());
    for dump in &corpus.sources {
        warehouse
            .add_source_files(&dump.name, dump.format, &dump.files)
            .expect("integration succeeds");
    }

    // The discovered structure of the protein knowledgebase mirrors the
    // BioSQL discussion of the paper: the entry table is primary, the
    // multi-valued annotation tables hang off it.
    let protkb = warehouse
        .metadata()
        .structure("protkb")
        .expect("protkb integrated");
    println!("protkb primary relation(s):");
    for p in &protkb.primary_relations {
        println!(
            "  {} (accession column '{}', in-degree {})",
            p.table, p.accession_column, p.in_degree
        );
    }
    println!("protkb secondary relations:");
    for s in &protkb.secondary_relations {
        println!("  {} via {:?}", s.table, s.path);
    }

    // Annotate every structure: follow the discovered links from structures
    // back to proteins, and from proteins onwards to genes and ontology terms.
    let mut annotated = 0usize;
    let mut with_gene = 0usize;
    for structure in warehouse
        .scan()
        .from_source("structdb")
        .limit(10)
        .fetch()
        .expect("structures exist")
    {
        let proteins = warehouse
            .accession("structdb", &structure.object.accession)
            .follow_links(None, 1)
            .from_source("protkb")
            .join_annotation("protkb_kw")
            .fetch()
            .expect("link traversal");
        let Some(protein) = proteins.first() else {
            continue;
        };
        annotated += 1;
        let gene = warehouse
            .accession("protkb", &protein.object.accession)
            .follow_links(None, 1)
            .from_source("genedb")
            .limit(1)
            .fetch()
            .expect("link traversal")
            .into_iter()
            .next();
        if gene.is_some() {
            with_gene += 1;
        }
        println!(
            "structure {:8} -> protein {:10} -> gene {:18} (annotation rows: {})",
            structure.object.accession,
            protein.object.accession,
            gene.map(|g| g.object.accession)
                .unwrap_or_else(|| "-".into()),
            protein.annotation.len()
        );
    }
    println!("\n{annotated} of the first 10 structures annotated with a protein, {with_gene} also with a gene");

    // A COLUMBA-style iterative filter query on the imported schema.
    let result = warehouse
        .sql(
            "structdb",
            "SELECT structure_id, resolution, method FROM structures WHERE resolution < 2.0 ORDER BY resolution LIMIT 5",
        )
        .expect("SQL over the imported structure schema");
    println!("\nhigh-resolution structures (resolution < 2.0 Å):");
    for row in result.rows() {
        println!("  {} {:>4} {}", row[0], row[1], row[2]);
    }
}
