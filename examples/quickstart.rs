//! Quickstart: generate a small synthetic life-science corpus, integrate it
//! almost hands-off, and access it through the unified `Warehouse` API.
//!
//! Run with: `cargo run --release --example quickstart`

use aladin::core::access::Warehouse;
use aladin::core::AladinConfig;
use aladin::datagen::{Corpus, CorpusConfig};

fn main() {
    // 1. A stand-in for downloading public databases: seven synthetic sources
    //    (protein knowledgebase, structures, genes, ontology, interactions,
    //    a second overlapping protein archive, taxonomy) in four formats.
    let corpus = Corpus::generate(&CorpusConfig::small(42));
    println!(
        "generated {} sources, {} bytes of raw files",
        corpus.sources.len(),
        corpus.byte_size()
    );

    // 2. Integrate every source. The only human input is the choice of parser
    //    (flat file / XML / tabular / FASTA); everything else is discovered.
    //    The warehouse's cached access structures (search index, link
    //    adjacency) invalidate themselves on every addition.
    let mut warehouse = Warehouse::new(AladinConfig::default());
    for dump in &corpus.sources {
        let report = warehouse
            .add_source_files(&dump.name, dump.format, &dump.files)
            .expect("integration succeeds");
        println!(
            "integrated {:12} {:3} tables {:5} rows  primary: {}",
            report.source,
            report.tables,
            report.rows,
            report
                .primary_relations
                .iter()
                .map(|(t, c)| format!("{t}.{c}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // 3. The warehouse now holds objects and links.
    println!(
        "\nwarehouse: {} sources, {} object links, {} duplicate links",
        warehouse.source_count(),
        warehouse.aladin().link_count(),
        warehouse.aladin().duplicate_count()
    );

    // 4. Browse one object and its neighbourhood.
    let object = warehouse
        .find_object("protkb", "P10000")
        .expect("the first protein exists");
    let view = warehouse.view(&object).expect("object view");
    println!("\nobject {object}");
    for (column, value) in view.attributes.iter().take(4) {
        println!("  {column}: {value}");
    }
    println!("  annotation rows: {}", view.annotation.len());
    println!("  duplicates flagged: {}", view.duplicates.len());
    for (other, kind, score) in view.linked.iter().take(5) {
        println!("  linked ({kind}, {score:.2}) -> {other}");
    }

    // 5. Compose the access modes: ranked search seeds, follow the discovered
    //    links into the structure source, stream the results in pages.
    let pages = warehouse
        .search("kinase")
        .follow_links(None, 1)
        .from_source("structdb")
        .cursor(5)
        .expect("composed query");
    println!("\nstructures linked to objects matching 'kinase':");
    for page in pages {
        for record in page.expect("page materializes") {
            let label = record
                .attr("title")
                .or_else(|| record.attr("structure_id"))
                .unwrap_or("-");
            println!("  {}  ({label})", record.object);
        }
    }
}
