//! Durability suite: end-to-end crash-recovery behaviour of the integration
//! pipeline and serving layer. A durable `Aladin` (configured with a data
//! directory) persists every committed source; `Aladin::open` must rebuild
//! an equivalent warehouse from disk, `Server::resume` must pick up the last
//! published generation, and injected damage to the pipeline event log must
//! cost at most the tail — never a panic, never a refusal to start.

use aladin::core::{Aladin, AladinConfig, Link, ServeConfig, Server, SourceStructure};
use aladin::datagen::{
    duplicate_last_wal_record, swap_last_two_wal_records, truncate_wal_mid_record, Corpus,
    CorpusConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "aladin-durability-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig::small(42))
}

/// Integrate every corpus source into a durable pipeline rooted at `dir`.
fn integrate_durable(corpus: &Corpus, dir: &PathBuf) -> Aladin {
    let mut aladin = Aladin::new(AladinConfig::default().with_data_dir(dir));
    for dump in &corpus.sources {
        aladin
            .add_source_files(&dump.name, dump.format, &dump.files)
            .unwrap_or_else(|e| panic!("failed to integrate {}: {e}", dump.name));
    }
    aladin
}

/// Everything observable about the integrated state, minus wall-clock
/// timings (see `pipeline_faults.rs`).
type Fingerprint = (Vec<String>, Vec<Link>, Vec<Link>, Vec<SourceStructure>);

fn fingerprint(aladin: &Aladin) -> Fingerprint {
    let sources: Vec<String> = aladin
        .source_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let structures: Vec<SourceStructure> = sources
        .iter()
        .filter_map(|s| aladin.metadata().structure(s).cloned())
        .collect();
    (
        sources,
        aladin.metadata().links().to_vec(),
        aladin.metadata().duplicates().to_vec(),
        structures,
    )
}

#[test]
fn reopened_pipeline_answers_identically_to_the_original() {
    let corpus = corpus();
    let dir = temp_dir("reopen");
    let live = integrate_durable(&corpus, &dir);
    let expected = fingerprint(&live);
    drop(live);

    let (reopened, recovery) = Aladin::open(AladinConfig::default().with_data_dir(&dir)).unwrap();
    assert_eq!(recovery.lost, Vec::<String>::new());
    assert!(recovery.truncated_events.is_none());
    assert_eq!(
        recovery.recovered.len(),
        corpus.sources.len(),
        "every committed source must be recovered"
    );
    assert_eq!(fingerprint(&reopened), expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resumed_server_continues_at_the_published_generation() {
    let corpus = corpus();
    let dir = temp_dir("resume");
    let live = integrate_durable(&corpus, &dir);
    let server = Server::start(live, ServeConfig::default()).unwrap();
    let generation = server.snapshot().generation();
    drop(server);

    let (resumed, recovery) = Server::resume(
        AladinConfig::default().with_data_dir(&dir),
        ServeConfig::default(),
    )
    .unwrap();
    assert_eq!(recovery.lost, Vec::<String>::new());
    assert_eq!(resumed.resumed_generation(), Some(generation));
    assert!(
        resumed.snapshot().generation() >= generation,
        "a resumed server must never publish a generation below the marker"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicated_commit_event_is_skipped_on_recovery() {
    let corpus = corpus();
    let dir = temp_dir("dup-event");
    drop(integrate_durable(&corpus, &dir));

    duplicate_last_wal_record(&dir.join("pipeline.wal")).unwrap();
    let (reopened, recovery) = Aladin::open(AladinConfig::default().with_data_dir(&dir)).unwrap();
    assert_eq!(recovery.lost, Vec::<String>::new());
    assert_eq!(recovery.recovered.len(), corpus.sources.len());
    assert_eq!(reopened.source_names().len(), corpus.sources.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_pipeline_event_log_loses_at_most_the_tail_commit() {
    let corpus = corpus();
    let dir = temp_dir("torn-event");
    drop(integrate_durable(&corpus, &dir));

    truncate_wal_mid_record(&dir.join("pipeline.wal")).unwrap();
    let (reopened, recovery) = Aladin::open(AladinConfig::default().with_data_dir(&dir)).unwrap();
    assert!(
        recovery.truncated_events.is_some(),
        "a torn event log must be reported"
    );
    // Exactly the final commit event is torn; everything before it survives.
    assert_eq!(recovery.recovered.len(), corpus.sources.len() - 1);
    assert_eq!(reopened.source_names().len(), corpus.sources.len() - 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reordered_pipeline_event_log_never_panics_and_keeps_the_intact_prefix() {
    let corpus = corpus();
    let dir = temp_dir("swap-event");
    drop(integrate_durable(&corpus, &dir));

    swap_last_two_wal_records(&dir.join("pipeline.wal")).unwrap();
    let (reopened, recovery) = Aladin::open(AladinConfig::default().with_data_dir(&dir)).unwrap();
    assert!(
        recovery.truncated_events.is_some(),
        "an out-of-order event log must be reported"
    );
    // Replay stops at the first out-of-order record: the two swapped tail
    // commits are dropped, the prefix survives.
    assert_eq!(recovery.recovered.len(), corpus.sources.len() - 2);
    assert_eq!(reopened.source_names().len(), corpus.sources.len() - 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// Order-insensitive form of a fingerprint: a refresh (and the
/// last-commit-order replay of recovery) may re-discover the same links and
/// structures in a different order, so compare them as sorted debug strings.
fn canonical(fp: &Fingerprint) -> (Vec<String>, Vec<String>, Vec<String>, Vec<String>) {
    fn sorted<T: std::fmt::Debug>(items: &[T]) -> Vec<String> {
        let mut out: Vec<String> = items.iter().map(|i| format!("{i:?}")).collect();
        out.sort();
        out
    }
    (sorted(&fp.0), sorted(&fp.1), sorted(&fp.2), sorted(&fp.3))
}

#[test]
fn refresh_persists_the_new_version_of_a_source() {
    let corpus = corpus();
    let dir = temp_dir("refresh");
    let mut live = integrate_durable(&corpus, &dir);

    // Re-import the first source's dump and refresh it in place, then
    // recover from disk: the reopened warehouse must describe exactly the
    // refreshed state (order-insensitively — recovery replays sources in
    // last-commit order, which moves the refreshed source to the end).
    let dump = &corpus.sources[0];
    let db = aladin::import::import_files(&dump.name, dump.format, &dump.files).unwrap();
    live.refresh_source(db, 1.0).unwrap();
    let after = canonical(&fingerprint(&live));
    drop(live);

    let (reopened, recovery) = Aladin::open(AladinConfig::default().with_data_dir(&dir)).unwrap();
    assert_eq!(recovery.lost, Vec::<String>::new());
    assert_eq!(canonical(&fingerprint(&reopened)), after);
    std::fs::remove_dir_all(&dir).ok();
}
