//! Fault-injection suite: end-to-end tests of the pipeline's fault
//! tolerance. Corrupt dumps, flaky fetchers and injected analysis/pair
//! faults are thrown at the integration pipeline, which must respond with
//! the documented containment: transactional rollback (nothing committed on
//! failure), per-source quarantine under `ContinueOnError`, per-pair panic
//! isolation, import quarantine within a budget, and bounded retry at the
//! reader.

use aladin::core::{
    Aladin, AladinConfig, AladinError, BatchErrorPolicy, FaultInjection, Link, SourceStructure,
};
use aladin::datagen::{
    corrupt_bytes, corrupt_dump, Corpus, CorpusConfig, FaultConfig, FlakyFetcher,
};
use aladin::import::{
    import_fetched, ImportError, ImportOptions, MemoryFetcher, RetryPolicy, SourceFormat,
};
use std::time::Duration;

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig::small(42))
}

fn config() -> AladinConfig {
    AladinConfig::default()
}

/// Everything observable about the integrated state, minus wall-clock
/// timings: source names, discovered links and duplicates, and the full
/// per-source structures. Two warehouses with equal fingerprints answer
/// every browse/search/query identically.
type Fingerprint = (Vec<String>, Vec<Link>, Vec<Link>, Vec<SourceStructure>);

fn fingerprint(aladin: &Aladin) -> Fingerprint {
    let sources: Vec<String> = aladin
        .source_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let structures: Vec<SourceStructure> = sources
        .iter()
        .filter_map(|s| aladin.metadata().structure(s).cloned())
        .collect();
    (
        sources,
        aladin.metadata().links().to_vec(),
        aladin.metadata().duplicates().to_vec(),
        structures,
    )
}

#[test]
fn quarantined_source_leaves_warehouse_identical_to_healthy_only_batch() {
    let corpus = corpus();
    let sick = "genedb";

    // Batch with one failing source under ContinueOnError.
    let mut cfg = config();
    cfg.faults.fail_analysis.push(sick.to_string());
    let mut with_fault = Aladin::new(cfg);
    let report = with_fault
        .add_databases_with(
            corpus.import_all().unwrap(),
            BatchErrorPolicy::ContinueOnError,
        )
        .unwrap();
    assert_eq!(report.quarantined().count(), 1);
    assert_eq!(report.quarantined().next().unwrap().source, sick);
    assert_eq!(report.integrated().count(), corpus.sources.len() - 1);
    assert!(!report.is_complete());

    // Reference: the same batch without the sick source at all.
    let mut healthy_only = Aladin::new(config());
    let healthy: Vec<_> = corpus
        .import_all()
        .unwrap()
        .into_iter()
        .filter(|db| db.name() != sick)
        .collect();
    healthy_only.add_databases(healthy).unwrap();

    // The quarantined source must have left no trace: links, duplicates and
    // structures are identical to never having offered it.
    assert_eq!(fingerprint(&with_fault), fingerprint(&healthy_only));
}

#[test]
fn fail_fast_batch_failure_rolls_back_everything() {
    let corpus = corpus();
    let mut aladin = Aladin::new(config());
    let mut dbs = corpus.import_all().unwrap();
    let late = dbs.split_off(3);
    aladin.add_databases(dbs).unwrap();
    let before = fingerprint(&aladin);
    let generation = aladin.metadata().generation();

    // Arm a failure for a source in the middle of the second batch.
    let sick = late[1].name().to_string();
    aladin.set_faults(FaultInjection {
        fail_analysis: vec![sick],
        ..FaultInjection::default()
    });
    let err = aladin.add_databases(late).unwrap_err();
    assert!(err.to_string().contains("injected analysis failure"));

    // Nothing of the failed batch was committed — not even the sources
    // staged before the failing one.
    assert_eq!(fingerprint(&aladin), before);
    assert_eq!(aladin.metadata().generation(), generation);

    // Disarmed, the same batch lands in full.
    aladin.set_faults(FaultInjection::default());
    let late: Vec<_> = corpus.import_all().unwrap().into_iter().skip(3).collect();
    aladin.add_databases(late).unwrap();
    assert_eq!(aladin.source_count(), corpus.sources.len());
}

#[test]
fn analysis_panic_is_contained_and_reported_as_partial_integration() {
    let corpus = corpus();
    let sick = "archive";
    let mut cfg = config().with_batch_policy(BatchErrorPolicy::ContinueOnError);
    cfg.faults.panic_analysis.push(sick.to_string());
    let mut aladin = Aladin::new(cfg);
    let err = aladin
        .add_databases(corpus.import_all().unwrap())
        .unwrap_err();
    match err {
        AladinError::PartialIntegration { failures } => {
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].source, sick);
            assert!(failures[0].error.to_string().contains("panicked"));
        }
        other => panic!("expected PartialIntegration, got {other:?}"),
    }
    assert_eq!(aladin.source_count(), corpus.sources.len() - 1);
    assert!(aladin.database(sick).is_err());
}

#[test]
fn injected_pair_panic_is_contained_and_recorded_in_metrics() {
    let corpus = corpus();
    let import = |name: &str| corpus.source(name).unwrap().import().unwrap();

    // Healthy reference: protkb and structdb cross-reference each other.
    let mut healthy = Aladin::new(config());
    healthy.add_database(import("protkb")).unwrap();
    let healthy_report = healthy.add_database(import("structdb")).unwrap();
    assert!(healthy_report.explicit_links > 0);
    assert!(healthy_report.pair_failures.is_empty());

    // Same order, with the structdb-vs-protkb pair job panicking.
    let mut faulty = Aladin::new(config());
    faulty.add_database(import("protkb")).unwrap();
    faulty.set_faults(FaultInjection {
        panic_pairs: vec![("structdb".to_string(), "protkb".to_string())],
        ..FaultInjection::default()
    });
    let report = faulty.add_database(import("structdb")).unwrap();

    // The pair was skipped, not the run: both sources are integrated, the
    // skipped pair produced no links, and the failure is on the record.
    assert_eq!(faulty.source_count(), 2);
    assert_eq!(report.explicit_links, 0);
    assert_eq!(report.pair_failures.len(), 1);
    let failure = &report.pair_failures[0];
    assert_eq!(failure.source, "structdb");
    assert_eq!(failure.pair, "protkb");
    assert!(failure.error.contains("injected pair panic"));

    let metrics = faulty.metrics();
    assert_eq!(metrics.failures, vec![failure.clone()]);
}

#[test]
fn failed_refresh_rolls_back_to_the_pre_refresh_generation() {
    let corpus = corpus();
    let import = |name: &str| corpus.source(name).unwrap().import().unwrap();
    let mut aladin = Aladin::new(config());
    aladin.add_database(import("protkb")).unwrap();
    aladin.add_database(import("structdb")).unwrap();
    let before = fingerprint(&aladin);
    let generation = aladin.metadata().generation();

    // The refresh's re-discovery against structdb fails.
    aladin.set_faults(FaultInjection {
        fail_pairs: vec![("protkb".to_string(), "structdb".to_string())],
        ..FaultInjection::default()
    });
    let err = aladin.refresh_source(import("protkb"), 1.0).unwrap_err();
    assert!(err.to_string().contains("injected pair failure"));

    // The stale version survived intact: same generation, same state.
    assert_eq!(aladin.metadata().generation(), generation);
    assert_eq!(fingerprint(&aladin), before);
    assert!(aladin.database("protkb").is_ok());

    // Disarmed, the same refresh succeeds and moves the generation.
    aladin.set_faults(FaultInjection::default());
    assert!(aladin
        .refresh_source(import("protkb"), 1.0)
        .unwrap()
        .is_some());
    assert!(aladin.metadata().generation() > generation);
}

#[test]
fn corrupted_dump_fails_strict_import_and_is_quarantined_within_budget() {
    let corpus = corpus();
    let tabular = corpus
        .sources
        .iter()
        .find(|s| s.format == SourceFormat::Tabular)
        .expect("corpus has a tabular source");
    let corrupt = corrupt_dump(
        tabular,
        &FaultConfig {
            garbage_rate: 1.0,
            ..FaultConfig::none(9)
        },
    );

    // Strict (default budget 0): the source fails, nothing is integrated.
    let mut strict = Aladin::new(config());
    let err = strict
        .add_source_files(&corrupt.name, corrupt.format, &corrupt.files)
        .unwrap_err();
    assert!(matches!(err, AladinError::Import(_)));
    assert_eq!(strict.source_count(), 0);

    // Tolerant: the garbage is quarantined record by record, the healthy
    // rows load, and the report says what was dropped.
    let mut tolerant = Aladin::new(config().with_import_error_budget(100_000));
    let report = tolerant
        .add_source_files(&corrupt.name, corrupt.format, &corrupt.files)
        .unwrap();
    assert!(!report.quarantined.is_empty());
    assert!(report.rows > 0);
    assert_eq!(tolerant.source_count(), 1);
    for record in &report.quarantined {
        assert!(!record.reason.is_empty());
        assert!(record.line > 0);
    }
}

#[test]
fn transient_fetch_failures_are_retried_and_permanent_ones_are_not() {
    let corpus = corpus();
    let tabular = corpus
        .sources
        .iter()
        .find(|s| s.format == SourceFormat::Tabular)
        .unwrap();

    // Two transient failures per file, three attempts allowed: every file
    // lands on its third try.
    let mut flaky = FlakyFetcher::over(tabular).with_transient_failures(2);
    let options = ImportOptions::strict().with_retry(RetryPolicy::linear(3, Duration::ZERO));
    let (db, _) = import_fetched(&tabular.name, tabular.format, &mut flaky, &options).unwrap();
    assert!(db.total_rows() > 0);
    assert_eq!(flaky.attempts(), 3 * tabular.files.len());

    // Without retries the first transient failure is fatal.
    let mut flaky = FlakyFetcher::over(tabular).with_transient_failures(2);
    let err = import_fetched(
        &tabular.name,
        tabular.format,
        &mut flaky,
        &ImportOptions::strict(),
    )
    .unwrap_err();
    assert!(matches!(err, ImportError::Io { attempts: 1, .. }));

    // A permanently broken file is never retried, whatever the budget.
    let broken_file = tabular.files[0].0.clone();
    let mut flaky = FlakyFetcher::over(tabular).with_broken_file(&broken_file);
    let err = import_fetched(&tabular.name, tabular.format, &mut flaky, &options).unwrap_err();
    assert!(matches!(err, ImportError::Io { attempts: 1, .. }));
}

#[test]
fn invalid_utf8_fails_strict_and_is_replaced_and_quarantined_tolerantly() {
    let corpus = corpus();
    let tabular = corpus
        .sources
        .iter()
        .find(|s| s.format == SourceFormat::Tabular)
        .unwrap();
    let bytes = corrupt_bytes(
        tabular,
        &FaultConfig {
            invalid_utf8: true,
            ..FaultConfig::none(3)
        },
    );

    let mut fetcher = MemoryFetcher::new(bytes.clone());
    let err = import_fetched(
        &tabular.name,
        tabular.format,
        &mut fetcher,
        &ImportOptions::strict(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("invalid UTF-8"));

    let mut fetcher = MemoryFetcher::new(bytes);
    let (db, quarantine) = import_fetched(
        &tabular.name,
        tabular.format,
        &mut fetcher,
        &ImportOptions::tolerant(100),
    )
    .unwrap();
    assert!(db.total_rows() > 0);
    assert!(quarantine
        .records()
        .iter()
        .any(|r| r.reason.contains("invalid UTF-8")));
}
