//! Integration tests for the unified `Warehouse` access API: all three
//! access modes through one facade, composed queries with cursor pagination,
//! and automatic cache invalidation on source addition and refresh.

use aladin::core::access::{AttrFilter, ObjectRecord, RecordOrigin, Warehouse};
use aladin::core::{AladinConfig, LinkKind};
use aladin::datagen::{Corpus, CorpusConfig};
use aladin::relstore::{ColumnDef, Database, TableSchema, Value};

fn corpus_warehouse(seed: u64) -> Warehouse {
    let corpus = Corpus::generate(&CorpusConfig::small(seed));
    let mut warehouse = Warehouse::with_defaults();
    for dump in &corpus.sources {
        warehouse
            .add_source_files(&dump.name, dump.format, &dump.files)
            .unwrap_or_else(|e| panic!("failed to integrate {}: {e}", dump.name));
    }
    warehouse
}

#[test]
fn all_three_access_modes_through_the_facade() {
    let warehouse = corpus_warehouse(11);

    // Browse: resolve an object and view its neighbourhood.
    let object = warehouse.find_object("protkb", "P10000").unwrap();
    let view = warehouse.view(&object).unwrap();
    assert!(!view.attributes.is_empty());
    assert!(!view.linked.is_empty(), "P10000 should be cross-referenced");
    assert!(!warehouse.reachable(&object, 2).unwrap().is_empty());

    // Search: ranked hits across sources.
    let hits = warehouse.search_hits("kinase", 20).unwrap();
    assert!(!hits.is_empty());
    assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));

    // Query: SQL with the new LIMIT/OFFSET pagination, path-guided joins and
    // cross-source object queries.
    let page = warehouse
        .sql(
            "protkb",
            "SELECT ac FROM protkb_entry ORDER BY ac LIMIT 5 OFFSET 5",
        )
        .unwrap();
    assert_eq!(page.row_count(), 5);
    let joined = warehouse.join_path("protkb", "protkb_kw").unwrap();
    assert!(joined.row_count() > 0);
    let ranked = warehouse
        .cross_source_objects("protkb", "structdb")
        .unwrap();
    assert!(!ranked.is_empty());
}

#[test]
fn composed_query_search_follow_join_cursor() {
    let warehouse = corpus_warehouse(13);

    // search → follow_links → join_annotation → cursor, end to end.
    let mut cursor = warehouse
        .search("kinase")
        .from_source("protkb")
        .follow_links(Some(LinkKind::ExplicitCrossRef), 1)
        .from_source("structdb")
        .join_annotation("chains")
        .cursor(3)
        .unwrap();
    assert!(
        !cursor.is_empty(),
        "kinase proteins should link to structures"
    );

    let mut records: Vec<ObjectRecord> = Vec::new();
    for page in cursor.by_ref() {
        let page = page.unwrap();
        assert!(page.len() <= 3);
        records.extend(page);
    }
    for record in &records {
        assert_eq!(record.object.source, "structdb");
        // Reached via a link from a protein.
        match &record.origin {
            RecordOrigin::Linked { via, kind, depth } => {
                assert_eq!(via.source, "protkb");
                assert_eq!(*kind, LinkKind::ExplicitCrossRef);
                assert_eq!(*depth, 1);
            }
            other => panic!("unexpected origin {other:?}"),
        }
        // The chains annotation came along.
        assert!(record.annotation.iter().all(|a| a.table == "chains"));
        assert!(!record.annotation.is_empty());
    }
}

#[test]
fn cursor_pagination_is_stable_across_pages() {
    let warehouse = corpus_warehouse(17);

    let all = warehouse.scan().fetch().unwrap();
    assert!(all.len() > 10);

    // Walking the cursor page by page reproduces the one-shot fetch exactly,
    // with no duplicated or dropped objects at page boundaries.
    let cursor = warehouse.scan().cursor(7).unwrap();
    assert_eq!(cursor.len(), all.len());
    let paged: Vec<ObjectRecord> = cursor.flat_map(|page| page.unwrap()).collect();
    assert_eq!(paged, all);

    // Offset/limit pagination over separate query executions is stable too.
    let mut stitched = Vec::new();
    let mut offset = 0;
    loop {
        let page = warehouse.scan().offset(offset).limit(7).fetch().unwrap();
        if page.is_empty() {
            break;
        }
        offset += page.len();
        stitched.extend(page);
    }
    assert_eq!(stitched, all);

    // Filters and ordering are deterministic across repeated runs.
    let a = warehouse
        .scan()
        .filter(AttrFilter::like("ac", "P%"))
        .fetch()
        .unwrap();
    let b = warehouse
        .scan()
        .filter(AttrFilter::like("ac", "P%"))
        .fetch()
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn explain_and_index_backed_point_lookups_end_to_end() {
    let warehouse = corpus_warehouse(19);

    // The optimized plan for an accession point lookup probes the hash index.
    let explained = warehouse.accession("protkb", "P10000").explain().unwrap();
    assert!(
        explained.contains("IndexScan protkb_entry.ac = 'P10000'"),
        "expected an IndexScan in:\n{explained}"
    );

    // EXPLAIN is reachable through the SQL dialect too.
    let plan_table = warehouse
        .sql(
            "protkb",
            "EXPLAIN SELECT * FROM protkb_entry WHERE ac = 'P10000'",
        )
        .unwrap();
    assert_eq!(
        plan_table.cell(0, "plan").unwrap().render(),
        "IndexScan protkb_entry.ac = 'P10000'"
    );

    // The index-backed fast path serves the same records as the reference
    // pipeline shape (accession root) for the same object.
    let via_filter = warehouse
        .scan()
        .from_source("protkb")
        .filter(AttrFilter::equals("ac", "P10000"))
        .fetch()
        .unwrap();
    assert_eq!(via_filter.len(), 1);
    let via_accession = warehouse.accession("protkb", "P10000").fetch().unwrap();
    assert_eq!(via_filter[0].object, via_accession[0].object);
    assert_eq!(via_filter[0].attributes, via_accession[0].attributes);
}

fn protein_db(descriptions: &[(&str, &str)]) -> Database {
    let mut db = Database::new("protkb");
    db.create_table(
        "protkb_entry",
        TableSchema::of(vec![
            ColumnDef::int("entry_id"),
            ColumnDef::text("ac"),
            ColumnDef::text("de"),
        ]),
    )
    .unwrap();
    db.create_table(
        "protkb_dr",
        TableSchema::of(vec![
            ColumnDef::int("dr_id"),
            ColumnDef::int("entry_id"),
            ColumnDef::text("value"),
        ]),
    )
    .unwrap();
    for (i, (ac, de)) in descriptions.iter().enumerate() {
        db.insert(
            "protkb_entry",
            vec![Value::Int(i as i64 + 1), Value::text(*ac), Value::text(*de)],
        )
        .unwrap();
    }
    // Two rows so the cross-reference column survives the low-cardinality
    // pruning rule of link discovery.
    for (id, entry, value) in [(1, 1, "STRUCTDB; 1ABC"), (2, 2, "STRUCTDB; 2DEF")] {
        db.insert(
            "protkb_dr",
            vec![Value::Int(id), Value::Int(entry), Value::text(value)],
        )
        .unwrap();
    }
    db
}

#[test]
fn caches_invalidate_on_add_database_and_refresh_source() {
    let config = AladinConfig {
        link_min_matches: 1,
        min_distinct_values: 2,
        ..Default::default()
    };
    let mut warehouse = Warehouse::new(config);
    warehouse
        .add_database(protein_db(&[
            ("P10001", "serine kinase enzyme"),
            ("P10002", "sugar transporter protein"),
            ("P10003", "ribosome assembly factor"),
        ]))
        .unwrap();

    // Build the caches by using them.
    assert_eq!(warehouse.search_hits("kinase", 10).unwrap().len(), 1);
    assert!(warehouse.search_hits("crystal", 10).unwrap().is_empty());
    let generation_before = warehouse.cached_generation().unwrap();

    // Adding a source must be reflected immediately: its objects are
    // searchable and its links traversable with no manual rebuild call.
    let mut structdb = Database::new("structdb");
    structdb
        .create_table(
            "structures",
            TableSchema::of(vec![
                ColumnDef::text("structure_id"),
                ColumnDef::text("title"),
            ]),
        )
        .unwrap();
    for (acc, title) in [
        ("1ABC", "crystal of a kinase"),
        ("2DEF", "crystal of a pore"),
    ] {
        structdb
            .insert("structures", vec![Value::text(acc), Value::text(title)])
            .unwrap();
    }
    warehouse.add_database(structdb).unwrap();

    let hits = warehouse.search_hits("crystal", 10).unwrap();
    assert_eq!(hits.len(), 2, "new source must be searchable immediately");
    assert!(warehouse.cached_generation().unwrap() > generation_before);
    let linked = warehouse
        .accession("protkb", "P10001")
        .follow_links(Some(LinkKind::ExplicitCrossRef), 1)
        .fetch()
        .unwrap();
    assert_eq!(linked.len(), 1);
    assert_eq!(linked[0].object.accession, "1ABC");

    // Refreshing a source re-integrates it; stale index entries must be
    // gone and new content present.
    warehouse
        .refresh_source(
            protein_db(&[
                ("P10001", "serine kinase enzyme"),
                ("P10002", "sugar transporter protein"),
                ("P10004", "novel telomerase subunit"),
            ]),
            1.0,
        )
        .unwrap()
        .expect("above threshold: re-integration happens");

    let stale = warehouse.search_hits("ribosome", 10).unwrap();
    assert!(stale.is_empty(), "stale index results must be impossible");
    let fresh = warehouse.search_hits("telomerase", 10).unwrap();
    assert_eq!(fresh.len(), 1);
    assert_eq!(fresh[0].object.accession, "P10004");
    assert!(warehouse.find_object("protkb", "P10003").is_err());

    // A below-threshold refresh is deferred and changes nothing.
    let generation = warehouse.cached_generation().unwrap();
    let deferred = warehouse
        .refresh_source(protein_db(&[("P10001", "x")]), 0.0)
        .unwrap();
    assert!(deferred.is_none());
    let _ = warehouse.search_hits("kinase", 10).unwrap();
    assert_eq!(warehouse.cached_generation().unwrap(), generation);
}
