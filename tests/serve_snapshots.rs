//! Stress tests for the concurrent serving layer (`core::serve`): N reader
//! threads against one writer on a generated corpus, asserting MVCC snapshot
//! isolation — every snapshot is internally consistent with its pinned
//! generation, generations observed by a reader never go backwards, and
//! cached results are byte-identical to uncached execution on the same
//! snapshot.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

use aladin::core::serve::{ServeConfig, Server};
use aladin::core::{QuerySpec, Warehouse};
use aladin::datagen::{Corpus, CorpusConfig};
use aladin::import::import_files;
use aladin::relstore::Database;

const READERS: usize = 8;
const WRITER_REFRESHES: usize = 3;

/// Integrate a small generated corpus and wrap it in a `Server`, returning
/// the corpus alongside so the writer thread can re-import dumps.
fn corpus_server(seed: u64, config: ServeConfig) -> (Server, Corpus) {
    let corpus = Corpus::generate(&CorpusConfig::small(seed));
    let mut warehouse = Warehouse::with_defaults();
    for dump in &corpus.sources {
        warehouse
            .add_source_files(&dump.name, dump.format, &dump.files)
            .unwrap_or_else(|e| panic!("failed to integrate {}: {e}", dump.name));
    }
    let server = warehouse
        .into_aladin()
        .serve_with(config)
        .expect("initial snapshot");
    (server, corpus)
}

/// Re-import one corpus dump into a fresh relational database, as a source
/// refresh would receive it.
fn reimport(corpus: &Corpus, index: usize) -> Database {
    let dump = &corpus.sources[index % corpus.sources.len()];
    import_files(&dump.name, dump.format, &dump.files).expect("corpus dumps re-import cleanly")
}

/// The fixed query pool every reader cycles through: one of each access
/// mode, so browse, search and query paths all run against every snapshot.
fn query_pool(seed_source: &str) -> Vec<QuerySpec> {
    vec![
        QuerySpec::scan().from_source(seed_source).limit(10),
        QuerySpec::search("kinase"),
        QuerySpec::search("kinase")
            .from_source(seed_source)
            .limit(5),
        QuerySpec::scan()
            .from_source(seed_source)
            .offset(2)
            .limit(4),
    ]
}

#[test]
fn eight_readers_one_writer_see_consistent_snapshots() {
    let (server, corpus) = corpus_server(11, ServeConfig::default());
    let source = corpus.sources[0].name.clone();
    let pool = query_pool(&source);

    let writer_done = AtomicBool::new(false);
    let failed_reads = AtomicUsize::new(0);
    let inconsistent = AtomicUsize::new(0);
    let reads = AtomicUsize::new(0);

    thread::scope(|scope| {
        for reader in 0..READERS {
            let server = &server;
            let pool = &pool;
            let writer_done = &writer_done;
            let failed_reads = &failed_reads;
            let inconsistent = &inconsistent;
            let reads = &reads;
            scope.spawn(move || {
                let mut last_generation = 0u64;
                let mut iteration = reader; // desynchronise the start points
                loop {
                    let finishing = writer_done.load(Ordering::Acquire);
                    let snapshot = server.snapshot();

                    // Snapshot isolation: the pinned generation must be
                    // exactly the generation of the warehouse it wraps, and
                    // generations never move backwards for any one reader.
                    if snapshot.warehouse().metadata().generation() != snapshot.generation()
                        || snapshot.generation() < last_generation
                    {
                        inconsistent.fetch_add(1, Ordering::Relaxed);
                    }
                    last_generation = snapshot.generation();

                    // Serve a query from the shared pool through the cache
                    // and re-execute it uncached on the same pinned
                    // snapshot: the rendering must be byte-identical.
                    let spec = &pool[iteration % pool.len()];
                    match server.fetch(spec) {
                        Ok(cached) => {
                            let uncached = snapshot
                                .warehouse()
                                .query(spec.clone())
                                .fetch()
                                .expect("pinned snapshot stays queryable");
                            if format!("{cached:?}") != format!("{uncached:?}") {
                                inconsistent.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            failed_reads.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // A ranked search on every other pass exercises the
                    // index of the snapshot too.
                    if iteration % 2 == 0 && server.search("kinase", 10).is_err() {
                        failed_reads.fetch_add(1, Ordering::Relaxed);
                    }

                    reads.fetch_add(1, Ordering::Relaxed);
                    iteration += 1;
                    if finishing {
                        break;
                    }
                }
            });
        }

        // One writer republishing the world while the readers run.
        let server = &server;
        let corpus = &corpus;
        let writer_done = &writer_done;
        scope.spawn(move || {
            for round in 0..WRITER_REFRESHES {
                let report = server
                    .refresh_source(reimport(corpus, round), 1.0)
                    .expect("refresh re-integrates");
                assert!(report.is_some(), "full change must re-integrate");
            }
            writer_done.store(true, Ordering::Release);
        });
    });

    assert_eq!(failed_reads.load(Ordering::Relaxed), 0, "no failed reads");
    assert_eq!(
        inconsistent.load(Ordering::Relaxed),
        0,
        "no torn or stale snapshot observations"
    );
    assert!(
        reads.load(Ordering::Relaxed) >= READERS,
        "readers made progress"
    );

    // Every refresh published exactly one new snapshot on top of the
    // initial one.
    let metrics = server.metrics();
    assert_eq!(metrics.snapshots_published, 1 + WRITER_REFRESHES as u64);
    assert!(metrics.queries_served > 0);
}

#[test]
fn pinned_snapshot_survives_publishes_unchanged() {
    let (server, corpus) = corpus_server(13, ServeConfig::default());
    let source = corpus.sources[0].name.clone();
    let spec = QuerySpec::scan().from_source(&source).limit(8);

    let pinned = server.snapshot();
    let before = format!(
        "{:?}",
        pinned.warehouse().query(spec.clone()).fetch().unwrap()
    );

    // Publish two newer generations while the old snapshot is held.
    for round in 0..2 {
        server
            .refresh_source(reimport(&corpus, round), 1.0)
            .unwrap();
    }
    assert!(server.generation() > pinned.generation());

    // The held snapshot still answers with exactly the bytes it answered
    // with before any publish, and still matches its own generation.
    let after = format!(
        "{:?}",
        pinned.warehouse().query(spec.clone()).fetch().unwrap()
    );
    assert_eq!(before, after);
    assert_eq!(
        pinned.warehouse().metadata().generation(),
        pinned.generation()
    );

    // The server itself serves the new generation.
    let fresh = server.snapshot();
    assert_eq!(
        fresh.warehouse().metadata().generation(),
        fresh.generation()
    );
    assert!(fresh.generation() > pinned.generation());
}

#[test]
fn cached_results_are_byte_identical_to_uncached_across_modes() {
    let (server, corpus) = corpus_server(17, ServeConfig::default());
    let source = corpus.sources[0].name.clone();
    let snapshot = server.snapshot();

    for spec in query_pool(&source) {
        // First call populates the cache, second is served from it; both
        // must render identically to direct execution on the snapshot.
        let first = server.fetch(&spec).unwrap();
        let second = server.fetch(&spec).unwrap();
        let direct = snapshot.warehouse().query(spec.clone()).fetch().unwrap();
        assert_eq!(format!("{first:?}"), format!("{direct:?}"));
        assert_eq!(format!("{second:?}"), format!("{direct:?}"));
    }

    let hits_cached = server.search("kinase", 10).unwrap();
    let hits_direct = snapshot.warehouse().search_hits("kinase", 10).unwrap();
    assert_eq!(format!("{hits_cached:?}"), format!("{hits_direct:?}"));

    let metrics = server.metrics();
    assert!(metrics.cache_hits >= query_pool(&source).len() as u64);
}
