//! Determinism property: the parallel pipeline (workers = 1, 2, 8) produces a
//! metadata repository equal to the sequential run on arbitrary generated
//! worlds — same links, same duplicates, same structures, same set of
//! recorded timing steps. Only the wall-clock values inside the timings may
//! differ between runs.

use aladin::core::config::DuplicateCandidates;
use aladin::core::{Aladin, AladinConfig, MetadataRepository, SourceStructure};
use aladin::datagen::{Corpus, CorpusConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn integrate(corpus: &Corpus, config: AladinConfig) -> MetadataRepository {
    let dbs = corpus.import_all().expect("corpus imports cleanly");
    let mut aladin = Aladin::new(config);
    aladin.add_databases(dbs).expect("corpus integrates");
    aladin.metadata().clone()
}

/// The `(source, step, pair)` identity of every recorded timing.
fn step_set(repo: &MetadataRepository) -> BTreeSet<(String, String, Option<String>)> {
    repo.timings()
        .iter()
        .map(|t| (t.source.clone(), t.step.clone(), t.pair.clone()))
        .collect()
}

fn assert_equivalent(sequential: &MetadataRepository, parallel: &MetadataRepository, label: &str) {
    assert_eq!(
        sequential.links(),
        parallel.links(),
        "{label}: links differ"
    );
    assert_eq!(
        sequential.duplicates(),
        parallel.duplicates(),
        "{label}: duplicates differ"
    );
    let seq_structures: Vec<&SourceStructure> = sequential.structures().collect();
    let par_structures: Vec<&SourceStructure> = parallel.structures().collect();
    assert_eq!(seq_structures, par_structures, "{label}: structures differ");
    assert_eq!(
        step_set(sequential),
        step_set(parallel),
        "{label}: timing step sets differ"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_pipeline_equals_sequential_on_arbitrary_worlds(
        seed in 0u64..10_000,
        n_proteins in 8usize..28,
        n_families in 2usize..6,
        archive_overlap in 0.0f64..1.0,
        structure_fraction in 0.0f64..0.8,
        missing_xref_rate in 0.0f64..0.6,
        three_flavours in 0u8..2,
        exhaustive in 0u8..2,
    ) {
        let corpus_config = CorpusConfig {
            seed,
            n_proteins,
            n_families,
            archive_overlap,
            structure_fraction,
            missing_xref_rate,
            three_flavour_structures: three_flavours == 1,
            ..CorpusConfig::small(seed)
        };
        let corpus = Corpus::generate(&corpus_config);
        let config = AladinConfig {
            duplicate_candidate_mode: if exhaustive == 1 {
                DuplicateCandidates::Exhaustive
            } else {
                DuplicateCandidates::Blocked
            },
            link_min_matches: 1,
            ..AladinConfig::default()
        };

        let sequential = integrate(&corpus, config.clone().with_workers(1));
        for workers in [2usize, 8] {
            let parallel = integrate(&corpus, config.clone().with_workers(workers));
            assert_equivalent(&sequential, &parallel, &format!("workers={workers}"));
        }
    }
}

/// Batch addition through `add_databases` matches one-by-one addition through
/// `add_database`, for several worker counts.
#[test]
fn batch_addition_matches_incremental_addition() {
    let corpus = Corpus::generate(&CorpusConfig::small(77));
    let dbs = || corpus.import_all().expect("corpus imports cleanly");

    let mut one_by_one = Aladin::new(AladinConfig::default().with_workers(1));
    for db in dbs() {
        one_by_one.add_database(db).unwrap();
    }

    for workers in [1usize, 2, 8] {
        let mut batched = Aladin::new(AladinConfig::default().with_workers(workers));
        batched.add_databases(dbs()).unwrap();
        assert_equivalent(
            one_by_one.metadata(),
            batched.metadata(),
            &format!("batch workers={workers}"),
        );
    }
}
