//! Integration test for the Table 1 comparison: ALADIN must reach at least the
//! link coverage of the SRS-like manually specified baseline while requiring
//! no declared schema elements, and the mediator baseline must show the
//! "schema-only" blind spot (no object links at all).

use aladin::baseline::mediator::{GlobalSchema, Mapping, Mediator};
use aladin::baseline::srs::{SourceSpec, SrsSystem};
use aladin::core::{Aladin, AladinConfig};
use aladin::datagen::{Corpus, CorpusConfig};

#[test]
fn aladin_matches_manual_specification_without_the_manual_work() {
    let mut config = CorpusConfig::small(77);
    config.missing_xref_rate = 0.0;
    let corpus = Corpus::generate(&config);
    let databases = corpus.import_all().unwrap();

    // SRS-like: the operator declares protkb's DR field as the only link field.
    let specs = vec![
        SourceSpec {
            source: "protkb".into(),
            primary_table: "protkb_entry".into(),
            accession_field: "ac".into(),
            indexed_fields: vec![("protkb_entry".into(), "de".into())],
            link_fields: vec![("protkb_dr".into(), "value".into(), "structdb".into())],
            join_column: "entry_id".into(),
        },
        SourceSpec {
            source: "structdb".into(),
            primary_table: "structures".into(),
            accession_field: "structure_id".into(),
            indexed_fields: vec![("structures".into(), "title".into())],
            link_fields: vec![],
            join_column: String::new(),
        },
    ];
    let srs = SrsSystem::build(&databases, specs);
    assert!(srs.effort().schema_elements_declared > 0);

    // ALADIN on the same corpus.
    let mut aladin = Aladin::new(AladinConfig::default());
    for dump in &corpus.sources {
        aladin
            .add_source_files(&dump.name, dump.format, &dump.files)
            .unwrap();
    }
    let aladin_protkb_structdb_links = aladin
        .metadata()
        .links()
        .iter()
        .filter(|l| {
            (l.from.source == "protkb" && l.to.source == "structdb")
                || (l.from.source == "structdb" && l.to.source == "protkb")
        })
        .count();
    assert!(
        aladin_protkb_structdb_links >= srs.links().len(),
        "ALADIN found {aladin_protkb_structdb_links} protkb-structdb links, SRS {} declared ones",
        srs.links().len()
    );

    // Mediator: hand-mapped global schema answers attribute queries but has no
    // notion of object links or duplicates at all.
    let mediator = Mediator::build(
        GlobalSchema {
            concept: "protein".into(),
            attributes: vec!["accession".into(), "description".into()],
        },
        vec![Mapping {
            source: "protkb".into(),
            table: "protkb_entry".into(),
            column: "ac".into(),
            global_attribute: "accession".into(),
        }],
        databases.iter().collect(),
    );
    let result = mediator
        .query_concept(&["accession", "description"])
        .unwrap();
    assert!(result.row_count() > 0);
    assert!(mediator.coverage() < 1.0);
    assert!(mediator.effort().mappings_written > 0);
    assert!(
        aladin.duplicate_count() > 0,
        "ALADIN flags duplicates, the mediator cannot"
    );
}
