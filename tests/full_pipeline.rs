//! End-to-end integration test: generate a synthetic corpus, integrate it with
//! ALADIN, and score every discovery step against the recorded ground truth.

use aladin::core::eval::{evaluate_links, evaluate_structure, ExpectedTruth};
use aladin::core::{Aladin, AladinConfig, BatchErrorPolicy};
use aladin::datagen::{Corpus, CorpusConfig, GroundTruth};

/// Convert the generator's ground truth into the evaluator's plain-data form.
fn expected_truth(truth: &GroundTruth) -> ExpectedTruth {
    ExpectedTruth {
        sources: truth
            .sources
            .iter()
            .map(|s| {
                (
                    s.source.clone(),
                    s.primary_tables.clone(),
                    s.accession_columns.clone(),
                    s.secondary_tables.clone(),
                )
            })
            .collect(),
        links: truth
            .links
            .iter()
            .map(|l| {
                (
                    l.from_source.clone(),
                    l.from_accession.clone(),
                    l.to_source.clone(),
                    l.to_accession.clone(),
                    l.explicit,
                )
            })
            .collect(),
        duplicates: truth
            .duplicates
            .iter()
            .map(|d| {
                (
                    d.source_a.clone(),
                    d.accession_a.clone(),
                    d.source_b.clone(),
                    d.accession_b.clone(),
                )
            })
            .collect(),
    }
}

/// Batch error policy under test: `ALADIN_TEST_POLICY=continue` runs the
/// suite with `ContinueOnError` (the CI fault job does this to prove the
/// quarantining path is a no-op on healthy data); anything else keeps the
/// default fail-fast policy.
fn policy_from_env(mut config: AladinConfig) -> AladinConfig {
    if std::env::var("ALADIN_TEST_POLICY").as_deref() == Ok("continue") {
        config.batch_policy = BatchErrorPolicy::ContinueOnError;
    }
    config
}

fn integrate(corpus: &Corpus, config: AladinConfig) -> Aladin {
    let mut aladin = Aladin::new(policy_from_env(config));
    for dump in &corpus.sources {
        aladin
            .add_source_files(&dump.name, dump.format, &dump.files)
            .unwrap_or_else(|e| panic!("failed to integrate {}: {e}", dump.name));
    }
    aladin
}

#[test]
fn full_corpus_integration_meets_quality_bars() {
    let corpus = Corpus::generate(&CorpusConfig::small(2024));
    let aladin = integrate(&corpus, AladinConfig::default());
    assert_eq!(aladin.source_count(), corpus.sources.len());

    let truth = expected_truth(&corpus.truth);
    let structure = evaluate_structure(&aladin, &truth);
    assert_eq!(structure.len(), corpus.truth.sources.len());

    // Primary-relation detection must be correct for the majority of sources
    // and for the protein knowledgebase in particular (the case-study claim).
    let correct = structure.iter().filter(|e| e.primary_correct).count();
    assert!(
        correct * 10 >= structure.len() * 7,
        "primary relations correct for only {correct}/{} sources",
        structure.len()
    );
    let protkb = structure.iter().find(|e| e.source == "protkb").unwrap();
    assert!(protkb.primary_correct, "protkb primary relation missed");
    assert!(protkb.accession_correct, "protkb accession column missed");

    // Explicit cross-reference discovery: high precision, reasonable recall.
    let links = evaluate_links(&aladin, &truth);
    assert!(
        links.explicit_links.precision() >= 0.8,
        "explicit link precision {:.2}",
        links.explicit_links.precision()
    );
    assert!(
        links.explicit_links.recall() >= 0.5,
        "explicit link recall {:.2}",
        links.explicit_links.recall()
    );

    // Duplicate detection: the protkb/archive overlap must be found with
    // decent recall and precision.
    assert!(
        links.duplicates.recall() >= 0.5,
        "duplicate recall {:.2}",
        links.duplicates.recall()
    );
    assert!(
        links.duplicates.precision() >= 0.5,
        "duplicate precision {:.2}",
        links.duplicates.precision()
    );
}

#[test]
fn incremental_addition_matches_batch_addition() {
    let corpus = Corpus::generate(&CorpusConfig::small(7));
    // Batch: all sources in generation order.
    let batch = integrate(&corpus, AladinConfig::default());
    // Incremental: reversed order.
    let mut reversed = Aladin::new(AladinConfig::default());
    for dump in corpus.sources.iter().rev() {
        reversed
            .add_source_files(&dump.name, dump.format, &dump.files)
            .unwrap();
    }
    assert_eq!(batch.source_count(), reversed.source_count());
    // Structure discovery is order-independent.
    for truth in &corpus.truth.sources {
        let a = batch.metadata().structure(&truth.source).unwrap();
        let b = reversed.metadata().structure(&truth.source).unwrap();
        let pa: Vec<&str> = a
            .primary_relations
            .iter()
            .map(|p| p.table.as_str())
            .collect();
        let pb: Vec<&str> = b
            .primary_relations
            .iter()
            .map(|p| p.table.as_str())
            .collect();
        assert_eq!(pa, pb, "primary relations differ for {}", truth.source);
    }
    // Explicit link discovery is symmetric (both directions are probed), so
    // the totals must agree.
    let count_explicit = |a: &Aladin| {
        a.metadata()
            .links()
            .iter()
            .filter(|l| l.kind == aladin::core::LinkKind::ExplicitCrossRef)
            .count()
    };
    assert_eq!(count_explicit(&batch), count_explicit(&reversed));
}

#[test]
fn withheld_cross_references_are_partially_recovered_implicitly() {
    let mut config = CorpusConfig::small(99);
    config.missing_xref_rate = 0.4;
    config.archive_overlap = 0.8;
    let corpus = Corpus::generate(&config);
    let aladin = integrate(&corpus, AladinConfig::default());
    let links = evaluate_links(&aladin, &expected_truth(&corpus.truth));
    assert!(
        corpus.truth.withheld_link_count() > 0,
        "corpus should withhold some links"
    );
    assert!(
        links.withheld_recall > 0.0,
        "no withheld link was recovered implicitly"
    );
}

#[test]
fn three_flavour_structure_duplicates_are_trivially_detected() {
    let mut config = CorpusConfig::small(5);
    config.three_flavour_structures = true;
    config.structure_fraction = 0.6;
    let corpus = Corpus::generate(&config);
    let aladin = integrate(&corpus, AladinConfig::default());
    let truth = expected_truth(&corpus.truth);
    let links = evaluate_links(&aladin, &truth);
    // The same PDB accession appears in all flavours, so duplicate detection
    // should find essentially all flavour duplicates.
    assert!(
        links.duplicates.recall() >= 0.6,
        "duplicate recall with shared accessions was only {:.2}",
        links.duplicates.recall()
    );
}

#[test]
fn two_primary_gene_source_is_detected_in_multi_mode() {
    let mut config = CorpusConfig::small(11);
    config.two_primary_gene_db = true;
    config.gene_fraction = 1.0;
    let corpus = Corpus::generate(&config);
    let aladin = integrate(&corpus, AladinConfig::with_multiple_primaries());
    let genedb = aladin.metadata().structure("genedb").unwrap();
    let tables: Vec<&str> = genedb
        .primary_relations
        .iter()
        .map(|p| p.table.as_str())
        .collect();
    assert!(
        tables.contains(&"genes_gene"),
        "gene table not primary: {tables:?}"
    );
}
