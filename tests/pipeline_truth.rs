//! Ground-truth harness for the integration pipeline (the paper's Section 5
//! "learning test set" idea): generate a multi-source world with `datagen`,
//! run the full pipeline, and assert precision/recall floors via `core::eval`
//! for primary relations, explicit links and duplicates — on both the blocked
//! and the exhaustive duplicate candidate paths.

use aladin::core::config::DuplicateCandidates;
use aladin::core::eval::{evaluate_links, evaluate_structure, ExpectedTruth, LinkEvaluation};
use aladin::core::{Aladin, AladinConfig, LinkKind};
use aladin::datagen::{Corpus, CorpusConfig, GroundTruth};
use std::collections::{BTreeMap, BTreeSet};

/// Convert the generator's ground truth into the evaluator's plain-data form,
/// closed over duplicate equivalence: if objects X and Y are recorded
/// duplicates, then every true link to X is also a true link to Y (the
/// COLUMBA-style reference database describes *real-world* objects, so a
/// discovered cross-reference into any database copy of the object is
/// correct), the members of an equivalence class are true links of each
/// other, and every cross-source pair within a class is a true duplicate
/// (the raw generator truth records the structure flavours only against the
/// original, not flavour-vs-flavour).
fn expected_truth(truth: &GroundTruth) -> ExpectedTruth {
    type Obj = (String, String);
    // Union-find over (source, accession) objects named in duplicate pairs.
    let mut parent: BTreeMap<Obj, Obj> = BTreeMap::new();
    fn find(
        parent: &mut BTreeMap<(String, String), (String, String)>,
        x: &(String, String),
    ) -> (String, String) {
        let p = match parent.get(x) {
            Some(p) if p != x => p.clone(),
            _ => return x.clone(),
        };
        let root = find(parent, &p);
        parent.insert(x.clone(), root.clone());
        root
    }
    for d in &truth.duplicates {
        let a = (d.source_a.clone(), d.accession_a.clone());
        let b = (d.source_b.clone(), d.accession_b.clone());
        parent.entry(a.clone()).or_insert_with(|| a.clone());
        parent.entry(b.clone()).or_insert_with(|| b.clone());
        let (ra, rb) = (find(&mut parent, &a), find(&mut parent, &b));
        if ra != rb {
            parent.insert(ra, rb);
        }
    }
    // Members of every equivalence class (objects not in any duplicate pair
    // form implicit singleton classes and need no entry).
    let members: Vec<Obj> = parent.keys().cloned().collect();
    let mut classes: BTreeMap<Obj, Vec<Obj>> = BTreeMap::new();
    for m in &members {
        let root = find(&mut parent, m);
        classes.entry(root).or_default().push(m.clone());
    }
    let equivalents = |obj: &Obj, parent: &mut BTreeMap<Obj, Obj>| -> Vec<Obj> {
        if parent.contains_key(obj) {
            classes[&find(parent, obj)].clone()
        } else {
            vec![obj.clone()]
        }
    };

    // Links, expanded over both endpoints' equivalence classes.
    let mut links: BTreeSet<(String, String, String, String, bool)> = BTreeSet::new();
    for l in &truth.links {
        let from = (l.from_source.clone(), l.from_accession.clone());
        let to = (l.to_source.clone(), l.to_accession.clone());
        for f in equivalents(&from, &mut parent) {
            for t in equivalents(&to, &mut parent) {
                links.insert((
                    f.0.clone(),
                    f.1.clone(),
                    t.0.clone(),
                    t.1.clone(),
                    l.explicit,
                ));
            }
        }
    }
    // Intra-class pairs: duplicates reference each other in the data (the
    // archive's uniprot_ref, equal flavour accessions), so they are true
    // links too — and every cross-source pair is a true duplicate.
    let mut duplicates: BTreeSet<(String, String, String, String)> = BTreeSet::new();
    for class in classes.values() {
        for (i, a) in class.iter().enumerate() {
            for b in class.iter().skip(i + 1) {
                links.insert((a.0.clone(), a.1.clone(), b.0.clone(), b.1.clone(), false));
                duplicates.insert((a.0.clone(), a.1.clone(), b.0.clone(), b.1.clone()));
            }
        }
    }

    ExpectedTruth {
        sources: truth
            .sources
            .iter()
            .map(|s| {
                (
                    s.source.clone(),
                    s.primary_tables.clone(),
                    s.accession_columns.clone(),
                    s.secondary_tables.clone(),
                )
            })
            .collect(),
        links: links.into_iter().collect(),
        duplicates: duplicates.into_iter().collect(),
    }
}

/// The duplicate-heavy multi-source world the harness scores against: a
/// solid archive overlap plus the three-flavour structure databases.
fn world() -> Corpus {
    let mut config = CorpusConfig::small(2026);
    config.archive_overlap = 0.7;
    config.structure_fraction = 0.5;
    config.three_flavour_structures = true;
    Corpus::generate(&config)
}

fn integrate(corpus: &Corpus, config: AladinConfig) -> Aladin {
    let dbs = corpus.import_all().expect("corpus imports cleanly");
    let mut aladin = Aladin::new(config);
    aladin.add_databases(dbs).expect("corpus integrates");
    aladin
}

/// Assert the harness floors for one integrated warehouse.
fn assert_floors(aladin: &Aladin, truth: &ExpectedTruth, label: &str) -> LinkEvaluation {
    // Primary relations: correct for the large majority of sources.
    let structure = evaluate_structure(aladin, truth);
    assert_eq!(structure.len(), truth.sources.len(), "{label}");
    let primary_correct = structure.iter().filter(|e| e.primary_correct).count();
    assert!(
        primary_correct * 10 >= structure.len() * 7,
        "{label}: primary relations correct for only {primary_correct}/{}",
        structure.len()
    );
    let accession_correct = structure.iter().filter(|e| e.accession_correct).count();
    assert!(
        accession_correct * 10 >= structure.len() * 7,
        "{label}: accession columns correct for only {accession_correct}/{}",
        structure.len()
    );

    // Explicit links: high precision, reasonable recall. The recall
    // denominator includes links that are *never* emitted explicitly
    // (protein→taxon, the withheld backlog, and the duplicate-closure
    // expansion over the structure flavours), so the floor sits below the
    // 0.5 the raw-truth test in `full_pipeline.rs` uses.
    let links = evaluate_links(aladin, truth);
    assert!(
        links.explicit_links.precision() >= 0.8,
        "{label}: explicit link precision {:.2}",
        links.explicit_links.precision()
    );
    assert!(
        links.explicit_links.recall() >= 0.4,
        "{label}: explicit link recall {:.2}",
        links.explicit_links.recall()
    );

    // Duplicates: the archive overlap and the structure flavours must be
    // found with decent precision and recall.
    assert!(
        links.duplicates.precision() >= 0.5,
        "{label}: duplicate precision {:.2}",
        links.duplicates.precision()
    );
    assert!(
        links.duplicates.recall() >= 0.5,
        "{label}: duplicate recall {:.2}",
        links.duplicates.recall()
    );
    links
}

#[test]
fn ground_truth_floors_hold_for_blocked_duplicates() {
    let corpus = world();
    let truth = expected_truth(&corpus.truth);
    let aladin = integrate(
        &corpus,
        AladinConfig {
            duplicate_candidate_mode: DuplicateCandidates::Blocked,
            ..AladinConfig::default()
        },
    );
    assert!(!corpus.truth.duplicates.is_empty());
    assert_floors(&aladin, &truth, "blocked");
}

#[test]
fn ground_truth_floors_hold_for_exhaustive_duplicates() {
    let corpus = world();
    let truth = expected_truth(&corpus.truth);
    let aladin = integrate(&corpus, AladinConfig::with_exhaustive_duplicates());
    assert_floors(&aladin, &truth, "exhaustive");
}

/// Regression pin: on the datagen world, blocking never drops a duplicate
/// pair the exhaustive path reports above the threshold — the blocked
/// candidate set must cover every exhaustive finding (it may add more).
#[test]
fn blocking_never_drops_an_exhaustive_duplicate() {
    let corpus = world();
    let exhaustive = integrate(&corpus, AladinConfig::with_exhaustive_duplicates());
    let blocked = integrate(&corpus, AladinConfig::default());

    let pair_set = |aladin: &Aladin| -> BTreeSet<(String, String, String, String)> {
        aladin
            .metadata()
            .duplicates()
            .iter()
            .map(|l| {
                (
                    l.from.source.clone(),
                    l.from.accession.clone(),
                    l.to.source.clone(),
                    l.to.accession.clone(),
                )
            })
            .collect()
    };
    let exhaustive_pairs = pair_set(&exhaustive);
    let blocked_pairs = pair_set(&blocked);
    assert!(!exhaustive_pairs.is_empty());
    let dropped: Vec<_> = exhaustive_pairs.difference(&blocked_pairs).collect();
    assert!(
        dropped.is_empty(),
        "blocking dropped {} of {} exhaustive duplicates, e.g. {:?}",
        dropped.len(),
        exhaustive_pairs.len(),
        dropped.first()
    );
}

/// The per-pair metrics surfaced by the pipeline cover every source pair of
/// steps 4–5 and account for the candidate pruning the blocked mode does.
#[test]
fn metrics_report_covers_every_pair() {
    let corpus = world();
    let aladin = integrate(&corpus, AladinConfig::default());
    let metrics = aladin.metrics();

    let n = corpus.sources.len();
    // Each newly added source is compared against every earlier source once:
    // n*(n-1)/2 pairs for both pairwise steps.
    assert_eq!(
        metrics.pair_timings("duplicate detection").count(),
        n * (n - 1) / 2
    );
    assert_eq!(
        metrics.pair_timings("link discovery").count(),
        n * (n - 1) / 2
    );
    // Every source has a structure-discovery measurement and a total.
    for dump in &corpus.sources {
        assert!(metrics.source_elapsed(&dump.name) > std::time::Duration::ZERO);
    }
    assert!(metrics.step_names().contains(&"structure discovery"));
    assert!(metrics.total_pairs_compared() > 0);

    // Explicit links found by the pipeline are all real discovered links.
    assert!(aladin
        .metadata()
        .links()
        .iter()
        .any(|l| l.kind == LinkKind::ExplicitCrossRef));
}
