//! Section 5 case study as an integration test: a BioSQL-like schema must be
//! analysed correctly (primary relation, accession column, secondary paths),
//! and the COLUMBA-style link from structures to annotation must be
//! discoverable both from existing cross-references and from sequence
//! similarity.

use aladin::core::pipeline::analyze_database;
use aladin::core::{Aladin, AladinConfig};
use aladin::relstore::{ColumnDef, Database, TableSchema, Value};

fn biosql_like() -> Database {
    let mut db = Database::new("biosql");
    db.create_table(
        "bioentry",
        TableSchema::of(vec![
            ColumnDef::int("bioentry_id"),
            ColumnDef::text("accession"),
            ColumnDef::text("name"),
            ColumnDef::int("taxon_id"),
        ]),
    )
    .unwrap();
    db.create_table(
        "biosequence",
        TableSchema::of(vec![
            ColumnDef::int("biosequence_id"),
            ColumnDef::int("bioentry_id"),
            ColumnDef::text("biosequence_str"),
        ]),
    )
    .unwrap();
    db.create_table(
        "dbref",
        TableSchema::of(vec![
            ColumnDef::int("dbref_id"),
            ColumnDef::int("bioentry_id"),
            ColumnDef::text("accession"),
        ]),
    )
    .unwrap();
    let seq = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ";
    for i in 1..=20i64 {
        db.insert(
            "bioentry",
            vec![
                Value::Int(i),
                Value::text(format!("BE{:04}X", i)),
                Value::text(format!(
                    "ENTRY{}{}",
                    i,
                    "_HUMAN".repeat(1 + (i as usize) % 2)
                )),
                Value::Int(1 + i % 5),
            ],
        )
        .unwrap();
        db.insert(
            "biosequence",
            vec![
                Value::Int(i),
                Value::Int(i),
                Value::text(seq.repeat(2 + (i as usize) % 3)),
            ],
        )
        .unwrap();
        db.insert(
            "dbref",
            vec![
                Value::Int(i),
                Value::Int(i),
                Value::text(format!(
                    "{}AB{}",
                    1 + i % 9,
                    (b'A' + (i % 20) as u8) as char
                )),
            ],
        )
        .unwrap();
    }
    db
}

#[test]
fn biosql_bioentry_is_identified_as_the_primary_relation() {
    let db = biosql_like();
    let structure = analyze_database(&db, &AladinConfig::default()).unwrap();

    // Only bioentry.accession qualifies: bioentry_id is purely numeric, name
    // varies too much in length, the sequence is far too long.
    assert_eq!(structure.primary_relations.len(), 1);
    assert_eq!(structure.primary_relations[0].table, "bioentry");
    assert_eq!(structure.primary_relations[0].accession_column, "accession");

    // Both annotation tables are connected to the primary relation.
    let secondary_tables: Vec<&str> = structure
        .secondary_relations
        .iter()
        .filter(|s| !s.path.is_empty())
        .map(|s| s.table.as_str())
        .collect();
    assert!(secondary_tables.contains(&"biosequence"));
    assert!(secondary_tables.contains(&"dbref"));

    // The dbref.accession field is recognized as a potential cross-reference
    // source (non-numeric, high cardinality) by the pruning step.
    let (candidates, _) =
        aladin::core::links::candidate_source_attributes(&structure, &AladinConfig::default());
    assert!(candidates
        .iter()
        .any(|c| c.table == "dbref" && c.column == "accession"));
}

#[test]
fn structures_link_to_biosql_entries_via_existing_cross_references() {
    // A small structure source whose accessions are referenced by dbref.
    let mut structdb = Database::new("structdb");
    structdb
        .create_table(
            "structures",
            TableSchema::of(vec![
                ColumnDef::text("structure_id"),
                ColumnDef::text("title"),
            ]),
        )
        .unwrap();
    for i in 1..=20i64 {
        structdb
            .insert(
                "structures",
                vec![
                    Value::text(format!(
                        "{}AB{}",
                        1 + i % 9,
                        (b'A' + (i % 20) as u8) as char
                    )),
                    Value::text(format!("crystal structure of entry {i}")),
                ],
            )
            .unwrap();
    }

    let config = AladinConfig {
        link_min_matches: 1,
        ..Default::default()
    };
    let mut aladin = Aladin::new(config);
    aladin.add_database(biosql_like()).unwrap();
    let report = aladin.add_database(structdb).unwrap();
    assert!(
        report.explicit_links >= 15,
        "only {} cross-references discovered",
        report.explicit_links
    );
}
