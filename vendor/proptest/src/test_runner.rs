//! Deterministic test driver: configuration and the random source handed to
//! strategies.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 64 keeps `cargo test` fast while
        // still exercising the properties well beyond example-based tests.
        ProptestConfig { cases: 64 }
    }
}

/// The random source strategies draw from (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drives one property test: a seeded RNG plus the case budget.
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
}

impl TestRunner {
    /// Seed deterministically from the test name so every run of a given test
    /// sees the same sequence (reproducible failures without shrinking).
    pub fn new(name: &str, config: ProptestConfig) -> TestRunner {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: TestRng::new(seed),
            cases: config.cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The random source for strategy generation.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}
