//! Offline stand-in for the `proptest` crate.
//!
//! The container this reproduction grows in has no network access, so the
//! real crates.io `proptest` cannot be fetched. This crate implements the API
//! subset the workspace's property tests use — the [`proptest!`] macro,
//! `prop_assert*` macros, [`prop_oneof!`], [`strategy::Just`], `any::<T>()`,
//! range and tuple strategies, a character-class regex subset for string
//! strategies, and `prop::collection::vec` — over a deterministic splitmix64
//! generator seeded from the test name. Unlike real proptest there is no
//! shrinking: a failing case panics with the ordinary assertion message.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the property tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property test (stand-in: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test (stand-in: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test (stand-in: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// the body for `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new(stringify!($name), $config);
            for _ in 0..runner.cases() {
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, runner.rng());)+
                $body
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = i64> {
        (0i64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 5usize..10, b in (0.25f64..=0.75)) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((0.25..=0.75).contains(&b));
        }

        #[test]
        fn mapped_and_union_strategies(v in arb_even(), w in prop_oneof![Just(1i64), Just(2i64)]) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(w == 1 || w == 2);
            prop_assert_ne!(w, 0);
        }

        #[test]
        fn string_and_vec_strategies(
            s in "[a-c]{2,4}",
            items in prop::collection::vec("[xy]{1}", 1..5),
        ) {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!((1..5).contains(&items.len()));
            prop_assert!(items.iter().all(|i| i == "x" || i == "y"));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_limits_cases(pair in (any::<bool>(), any::<i64>())) {
            let (_b, _i) = pair;
        }
    }
}
