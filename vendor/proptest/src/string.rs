//! String generation from a regex subset: sequences of literal characters and
//! character classes, each with an optional `{n}` / `{m,n}` repetition.
//!
//! This covers every pattern the workspace's property tests use, e.g.
//! `"[a-zA-Z0-9_:;. -]{0,24}"`, `"[ -~]{0,40}"`, `"[ACGT]{8,40}"`. Ranges
//! inside classes follow regex rules: `-` is literal only first or last.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Atom {
    /// The characters this atom may produce.
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|c| *c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unterminated class in pattern '{pattern}'"));
                let inner = &chars[i + 1..close];
                i = close + 1;
                expand_class(inner, pattern)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("trailing escape in pattern '{pattern}'"));
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i + 1..]
                .iter()
                .position(|c| *c == '}')
                .map(|p| p + i + 1)
                .unwrap_or_else(|| panic!("unterminated repetition in pattern '{pattern}'"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition in pattern '{pattern}'");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn expand_class(inner: &[char], pattern: &str) -> Vec<char> {
    assert!(!inner.is_empty(), "empty class in pattern '{pattern}'");
    let mut out = Vec::new();
    let mut i = 0;
    while i < inner.len() {
        // `a-z` range (the `-` must have a neighbour on both sides).
        if i + 2 < inner.len() && inner[i + 1] == '-' {
            let (lo, hi) = (inner[i], inner[i + 2]);
            assert!(lo <= hi, "inverted range in pattern '{pattern}'");
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(inner[i]);
            i += 1;
        }
    }
    out
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let n = atom.min + rng.below(atom.max - atom.min + 1);
        for _ in 0..n {
            out.push(atom.choices[rng.below(atom.choices.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn classes_ranges_and_repetitions() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = generate("[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        // `-` placed last is literal; space-to-tilde is a range.
        let all_printable = generate("[ -~]{200}", &mut rng);
        assert!(all_printable.chars().all(|c| (' '..='~').contains(&c)));
        let with_dash = generate("[a -]{50}", &mut rng);
        assert!(with_dash.chars().all(|c| "a -".contains(c)));
        // Literals and single classes default to one occurrence.
        assert_eq!(generate("ab", &mut rng), "ab");
        assert_eq!(generate("a{3}", &mut rng), "aaa");
    }

    #[test]
    fn zero_length_repetitions_allowed() {
        let mut rng = TestRng::new(2);
        let mut saw_empty = false;
        let mut saw_nonempty = false;
        for _ in 0..300 {
            let s = generate("[xyz]{0,2}", &mut rng);
            assert!(s.len() <= 2);
            saw_empty |= s.is_empty();
            saw_nonempty |= !s.is_empty();
        }
        assert!(saw_empty && saw_nonempty);
    }
}
