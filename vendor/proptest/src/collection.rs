//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy generating vectors with lengths drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = if span == 0 {
            self.size.start
        } else {
            self.size.start + rng.below(span)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vector of values from `element`, with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
