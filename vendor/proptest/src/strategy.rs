//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (reference-counted so unions stay cloneable).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Uniform choice among several strategies of the same value type.
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

// --- primitive strategies ------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + r as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (*self.start() as i128 + r as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// `&str` literals are regex strategies (character-class subset; see
/// [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

// --- any::<T>() ----------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite full-range doubles; NaN/inf excluded on purpose — the
        // workspace's orderings are only total over non-NaN values.
        f64::from_bits(rng.next_u64() % (0x7FF0u64 << 48))
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<i64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
