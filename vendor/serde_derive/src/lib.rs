//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker —
//! nothing in the reproduction serializes data yet — so the derives expand to
//! nothing. When real serialization lands, this crate is the single place to
//! replace with the genuine `serde_derive`.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
