//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BenchmarkId`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — over a simple
//! median-of-samples timer. No statistics beyond mean/median/min, no HTML
//! reports; results are printed one line per benchmark so the bench
//! trajectory stays comparable across PRs. Passing `--test` (as `cargo test`
//! does for bench targets) runs every closure exactly once.

use std::time::{Duration, Instant};

/// Re-export hint barrier; `std::hint::black_box` is stable and does the job.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; the stand-in treats all variants
/// identically (one setup per measured invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A parameterized benchmark identifier, `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measurement settings shared by [`Criterion`] and groups.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Settings {
    fn from_args() -> Settings {
        let test_mode = std::env::args().any(|a| a == "--test");
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            test_mode,
        }
    }
}

/// The benchmark manager.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            settings: Settings::from_args(),
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.settings, f);
        self
    }
}

/// A group of benchmarks sharing settings and a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Override the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // The stand-in deliberately caps the budget: relative comparisons
        // stay meaningful and `cargo bench` stays fast.
        self.settings.measurement_time = d.min(Duration::from_secs(2));
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name), self.settings, f);
        self
    }

    /// Run a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.settings, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (report separator).
    pub fn finish(&mut self) {}
}

/// Passed to every benchmark closure; drives the measured routine.
pub struct Bencher {
    settings: Settings,
    /// Collected per-invocation timings for the current benchmark.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure a routine directly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let budget = self.settings.measurement_time;
        let started = Instant::now();
        for _ in 0..self.settings.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if self.settings.test_mode || started.elapsed() > budget {
                break;
            }
        }
    }

    /// Measure a routine with a per-invocation setup whose cost is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let budget = self.settings.measurement_time;
        let started = Instant::now();
        for _ in 0..self.settings.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if self.settings.test_mode || started.elapsed() > budget {
                break;
            }
        }
    }
}

fn run_benchmark<F>(name: &str, settings: Settings, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        settings: Settings {
            sample_size: if settings.test_mode {
                1
            } else {
                settings.sample_size
            },
            ..settings
        },
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name:<52} no samples");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<52} median {:>12?}  mean {:>12?}  min {:>12?}  ({} samples)",
        median,
        mean,
        samples[0],
        samples.len()
    );
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 1);
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut total = 0usize;
        group.bench_function("direct", |b| b.iter(|| total += 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, n| {
            b.iter_batched(|| *n, |v| total += v, BatchSize::SmallInput)
        });
        group.finish();
        assert!(total >= 8);
    }
}
