//! Offline stand-in for `serde`.
//!
//! The container this reproduction grows in has no network access, so the
//! crates.io `serde` cannot be fetched. The workspace currently uses serde
//! only as `#[derive(Serialize, Deserialize)]` markers on plain-data types;
//! this crate provides the two trait names and re-exports the no-op derives so
//! those annotations compile. Swapping in the real `serde` later requires no
//! source changes outside `vendor/`.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
