//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the subset the workspace uses: [`SeedableRng`] with
//! `seed_from_u64`, [`rngs::StdRng`], and the [`Rng`] extension methods
//! `gen_range` (over integer ranges) and `gen_bool`. The generator is
//! xoshiro256** seeded through SplitMix64, which gives high-quality,
//! deterministic streams for the synthetic-corpus generator without any
//! external dependency. Not cryptographically secure — neither is the use.

/// A source of randomness: the core trait mirroring `rand::RngCore`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Primitive integers that [`Rng::gen_range`] can sample.
pub trait RangeInt: Copy {
    /// Widen to `i128` (lossless for every primitive integer type).
    fn to_i128(self) -> i128;
    /// Narrow from `i128`; callers guarantee the value is in range.
    fn from_i128(v: i128) -> Self;
}

/// Argument to [`Rng::gen_range`]: the sampled type plus its bounds.
pub trait SampleRange<T> {
    /// Inclusive low bound and inclusive high bound of the range.
    fn bounds(&self) -> (T, T);
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start < self.end, "gen_range called with empty range");
                (self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start() <= self.end(), "gen_range called with empty range");
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: RangeInt,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds();
        let (lo_w, hi_w) = (lo.to_i128(), hi.to_i128());
        let span = (hi_w - lo_w) as u128 + 1;
        // Multiply-shift bounded sampling; the tiny modulo bias is irrelevant
        // for data generation.
        let r = ((self.next_u64() as u128).wrapping_mul(span)) >> 64;
        T::from_i128(lo_w + r as i128)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p={p}");
        // 53 high bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        f < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** with SplitMix64
    /// seed expansion (same construction the xoshiro authors recommend).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&v));
            let u: usize = rng.gen_range(3..5);
            assert!((3..5).contains(&u));
        }
        // Both endpoints of a small range are reachable.
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
